/**
 * @file
 * SimRunner tests: parallel results bit-identical to serial runs,
 * result-cache behavior, config-key coverage, and DynInst slab-pool
 * recycling (run under ASan/TSan in CI).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/processor.hh"
#include "sim/runner.hh"
#include "uarch/inst_pool.hh"
#include "workloads/suite.hh"

namespace tcfill
{
namespace
{

constexpr InstSeqNum kTestInsts = 20'000;

SimConfig
cfgAt(const FillOptimizations &opts, const std::string &name)
{
    SimConfig cfg = SimConfig::withOpts(opts);
    cfg.name = name;
    cfg.maxInsts = kTestInsts;
    return cfg;
}

std::vector<SimConfig>
testConfigs()
{
    return {cfgAt(FillOptimizations::none(), "none"),
            cfgAt(FillOptimizations::all(), "all"),
            cfgAt(FillOptimizations::extended(), "extended")};
}

/**
 * Every deterministic field two runs of the same point must share.
 * Provenance fields (cacheHit) and wall-clock fields (hostSeconds)
 * are deliberately excluded: they describe how a result was obtained,
 * not what was simulated.
 */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.tcHits, b.tcHits);
    EXPECT_EQ(a.tcMisses, b.tcMisses);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.inactiveRescues, b.inactiveRescues);
    EXPECT_EQ(a.mispredictStallCycles, b.mispredictStallCycles);
    EXPECT_EQ(a.segmentsBuilt, b.segmentsBuilt);
    EXPECT_EQ(a.dynMoves, b.dynMoves);
    EXPECT_EQ(a.dynReassoc, b.dynReassoc);
    EXPECT_EQ(a.dynScaled, b.dynScaled);
    EXPECT_EQ(a.dynElided, b.dynElided);
    EXPECT_EQ(a.dynMoveIdioms, b.dynMoveIdioms);
    EXPECT_EQ(a.bypassDelayed, b.bypassDelayed);
    EXPECT_DOUBLE_EQ(a.ipc(), b.ipc());
}

TEST(SimRunner, ParallelMatchesSerial)
{
    const char *names[] = {"compress", "li", "perl"};
    SimRunner pool(4);

    // Enqueue all 9 points first so they genuinely run concurrently.
    std::vector<std::shared_future<SimResult>> futs;
    for (const char *name : names)
        for (const auto &cfg : testConfigs())
            futs.push_back(pool.submit(name, cfg));

    std::size_t i = 0;
    for (const char *name : names) {
        Program prog = workloads::build(name, 1);
        for (const auto &cfg : testConfigs()) {
            SimResult serial = simulate(prog, cfg);
            SimResult parallel = futs[i++].get();
            SCOPED_TRACE(std::string(name) + "/" + cfg.name);
            expectIdentical(serial, parallel);
        }
    }
}

TEST(SimRunner, CacheReturnsHitsForRepeatedConfigs)
{
    SimRunner pool(2);
    SimConfig cfg = cfgAt(FillOptimizations::all(), "all");

    SimResult first = pool.run("compress", cfg);
    EXPECT_EQ(pool.cacheStats().resultMisses, 1u);
    EXPECT_EQ(pool.cacheStats().resultHits, 0u);

    SimResult second = pool.run("compress", cfg);
    EXPECT_EQ(pool.cacheStats().resultMisses, 1u);
    EXPECT_EQ(pool.cacheStats().resultHits, 1u);
    expectIdentical(first, second);

    // The cosmetic name is not part of the key, but the label on the
    // returned copy follows the request.
    SimConfig renamed = cfg;
    renamed.name = "same-params-different-name";
    SimResult third = pool.run("compress", renamed);
    EXPECT_EQ(pool.cacheStats().resultHits, 2u);
    EXPECT_EQ(third.config, "same-params-different-name");
    expectIdentical(first, third);

    // Any parameter change must miss.
    SimConfig changed = cfg;
    changed.fill.latency = cfg.fill.latency + 1;
    pool.run("compress", changed);
    EXPECT_EQ(pool.cacheStats().resultMisses, 2u);
}

TEST(SimRunner, ConfigKeyCoversEveryKnob)
{
    // One mutation per behavior-affecting field of SimConfig and every
    // nested params struct; each must change the cache key, or the
    // SimRunner would silently alias distinct design points. The
    // static_assert tripwires next to configCacheKey() force this list
    // to grow with the structs. (CacheParams::name is cosmetic, like
    // SimConfig::name, and intentionally absent.)
    struct Knob
    {
        const char *name;
        void (*mutate)(SimConfig &);
    };
    const Knob knobs[] = {
        // SimConfig scalars.
        {"useTraceCache", [](SimConfig &c) { c.useTraceCache = false; }},
        {"inactiveIssue", [](SimConfig &c) { c.inactiveIssue = false; }},
        {"fetchWidth", [](SimConfig &c) { c.fetchWidth = 8; }},
        {"fetchQueueLines", [](SimConfig &c) { c.fetchQueueLines = 2; }},
        {"retireWidth", [](SimConfig &c) { c.retireWidth = 4; }},
        {"windowCap", [](SimConfig &c) { c.windowCap = 64; }},
        {"rasDepth", [](SimConfig &c) { c.rasDepth = 2; }},
        {"maxInsts", [](SimConfig &c) { c.maxInsts = 123; }},
        {"maxCycles", [](SimConfig &c) { c.maxCycles = 456; }},
        // Timeline telemetry changes the result document (not its
        // timing), so it must key the cache too.
        {"statsInterval", [](SimConfig &c) { c.statsInterval = 777; }},
        {"statsPhases", [](SimConfig &c) { c.statsPhases = 5; }},
        // FillUnitConfig.
        {"fill.latency", [](SimConfig &c) { c.fill.latency = 9; }},
        {"fill.packTraces",
         [](SimConfig &c) { c.fill.packTraces = false; }},
        {"fill.alignLoopHeads",
         [](SimConfig &c) { c.fill.alignLoopHeads = true; }},
        {"fill.restartAtMissTargets",
         [](SimConfig &c) { c.fill.restartAtMissTargets = false; }},
        {"fill.promoteBranches",
         [](SimConfig &c) { c.fill.promoteBranches = false; }},
        {"fill.maxInsts", [](SimConfig &c) { c.fill.maxInsts = 8; }},
        {"fill.maxCondBranches",
         [](SimConfig &c) { c.fill.maxCondBranches = 1; }},
        // FillOptimizations.
        {"opts.markMoves",
         [](SimConfig &c) { c.fill.opts.markMoves = true; }},
        {"opts.reassociate",
         [](SimConfig &c) { c.fill.opts.reassociate = true; }},
        {"opts.scaledAdds",
         [](SimConfig &c) { c.fill.opts.scaledAdds = true; }},
        {"opts.placement",
         [](SimConfig &c) { c.fill.opts.placement = true; }},
        {"opts.deadCodeElim",
         [](SimConfig &c) { c.fill.opts.deadCodeElim = true; }},
        // ReassocOptions.
        {"reassoc.crossBlockOnly",
         [](SimConfig &c) {
             c.fill.opts.reassocOptions.crossBlockOnly = false;
         }},
        {"reassoc.foldMemDisplacement",
         [](SimConfig &c) {
             c.fill.opts.reassocOptions.foldMemDisplacement = false;
         }},
        // FillPolicyParams.
        {"policy.kind",
         [](SimConfig &c) {
             c.fill.policy.kind = FillPolicyKind::Phase;
         }},
        {"policy.maxPhases",
         [](SimConfig &c) { c.fill.policy.maxPhases = 4; }},
        {"policy.windowInsts",
         [](SimConfig &c) { c.fill.policy.windowInsts = 5000; }},
        {"policy.newPhaseDist",
         [](SimConfig &c) { c.fill.policy.newPhaseDist = 0.5; }},
        {"policy.hysteresis",
         [](SimConfig &c) { c.fill.policy.hysteresis = 0.5; }},
        {"policy.oracleMap",
         [](SimConfig &c) { c.fill.policy.oracleMap = "*=none"; }},
        // TraceCache::Params.
        {"tcache.entries", [](SimConfig &c) { c.tcache.entries = 64; }},
        {"tcache.ways", [](SimConfig &c) { c.tcache.ways = 2; }},
        {"tcache.moveBits",
         [](SimConfig &c) { c.tcache.moveBits = true; }},
        {"tcache.scaledBits",
         [](SimConfig &c) { c.tcache.scaledBits = true; }},
        {"tcache.placementBits",
         [](SimConfig &c) { c.tcache.placementBits = true; }},
        // MemoryHierarchy::Params (every CacheParams field × level).
        {"mem.l1i.sizeBytes",
         [](SimConfig &c) { c.mem.l1i.sizeBytes = 1024; }},
        {"mem.l1i.lineBytes",
         [](SimConfig &c) { c.mem.l1i.lineBytes = 32; }},
        {"mem.l1i.ways", [](SimConfig &c) { c.mem.l1i.ways = 1; }},
        {"mem.l1d.sizeBytes",
         [](SimConfig &c) { c.mem.l1d.sizeBytes = 1024; }},
        {"mem.l1d.lineBytes",
         [](SimConfig &c) { c.mem.l1d.lineBytes = 32; }},
        {"mem.l1d.ways", [](SimConfig &c) { c.mem.l1d.ways = 1; }},
        {"mem.l2.sizeBytes",
         [](SimConfig &c) { c.mem.l2.sizeBytes = 65536; }},
        {"mem.l2.lineBytes",
         [](SimConfig &c) { c.mem.l2.lineBytes = 32; }},
        {"mem.l2.ways", [](SimConfig &c) { c.mem.l2.ways = 1; }},
        {"mem.l2Latency", [](SimConfig &c) { c.mem.l2Latency = 11; }},
        {"mem.memLatency", [](SimConfig &c) { c.mem.memLatency = 99; }},
        {"mem.memBusOccupancy",
         [](SimConfig &c) { c.mem.memBusOccupancy = 3; }},
        // MultiBranchPredictor::Params.
        {"bpred.pht0Entries",
         [](SimConfig &c) { c.bpred.pht0Entries = 512; }},
        {"bpred.pht1Entries",
         [](SimConfig &c) { c.bpred.pht1Entries = 512; }},
        {"bpred.pht2Entries",
         [](SimConfig &c) { c.bpred.pht2Entries = 512; }},
        {"bpred.historyBits",
         [](SimConfig &c) { c.bpred.historyBits = 7; }},
        // BiasTable::Params.
        {"bias.entries", [](SimConfig &c) { c.bias.entries = 512; }},
        {"bias.promoteThreshold",
         [](SimConfig &c) { c.bias.promoteThreshold = 3; }},
        // ExecCoreParams.
        {"core.numClusters",
         [](SimConfig &c) { c.core.numClusters = 2; }},
        {"core.fusPerCluster",
         [](SimConfig &c) { c.core.fusPerCluster = 2; }},
        {"core.rsEntries", [](SimConfig &c) { c.core.rsEntries = 8; }},
        {"core.crossClusterDelay",
         [](SimConfig &c) { c.core.crossClusterDelay = 4; }},
        {"core.scheduler",
         [](SimConfig &c) { c.core.scheduler = SchedulerKind::Scan; }},
    };

    const SimConfig base;
    const std::string base_key = configCacheKey(base);
    for (const Knob &k : knobs) {
        SimConfig mutated = base;
        k.mutate(mutated);
        SCOPED_TRACE(k.name);
        EXPECT_NE(configCacheKey(mutated), base_key);
    }

    // The name alone must NOT change the key (baseline sharing).
    SimConfig renamed = base;
    renamed.name = "renamed";
    EXPECT_EQ(configCacheKey(renamed), base_key);
}

TEST(SimRunner, CacheHitProvenanceIsRecorded)
{
    SimRunner pool(2);
    SimConfig cfg = cfgAt(FillOptimizations::all(), "all");

    SimResult first = pool.run("compress", cfg);
    EXPECT_EQ(first.cacheHit, "computed");
    SimResult second = pool.run("compress", cfg);
    EXPECT_EQ(second.cacheHit, "memory");
    EXPECT_EQ(first.sourceDigest, workloadDigest("compress", 1));
    // Provenance never changes the simulated outcome.
    expectIdentical(first, second);
}

TEST(SimRunner, ProgramCacheBuildsOnce)
{
    SimRunner pool(2);
    auto a = pool.program("compress", 1);
    auto b = pool.program("compress", 1);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(pool.cacheStats().programsBuilt, 1u);
    auto c = pool.program("compress", 2);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(pool.cacheStats().programsBuilt, 2u);
}

TEST(SlabArena, RecyclesBlocksThroughTheFreeList)
{
    SlabArena arena;
    // Churn instruction handles the way the fetch/retire loop does:
    // allocate a line's worth, drop them, allocate again. Under ASan
    // this also proves recycling introduces no use-after-free.
    std::vector<DynInstPtr> line;
    for (int round = 0; round < 64; ++round) {
        for (int i = 0; i < 16; ++i) {
            DynInstPtr di = allocDynInst(arena);
            di->seq = static_cast<InstSeqNum>(round * 16 + i);
            di->pc = 0x400000 + 4 * static_cast<Addr>(i);
            line.push_back(std::move(di));
        }
        // Cross-reference operands like rename does, then retire.
        for (std::size_t i = 1; i < line.size(); ++i)
            line[i]->src[0] = Operand{line[i - 1], 0};
        for (auto &di : line)
            EXPECT_FALSE(di->squashed());
        line.clear();
    }
    EXPECT_EQ(arena.live(), 0u);
    // After the first round every allocation is a free-list reuse.
    EXPECT_GE(arena.reused(), 16u * 63u);
    EXPECT_EQ(arena.slabs(), 1u);
}

TEST(SlabArena, FullSimulationRecyclesAndStaysDeterministic)
{
    // A full simulation allocates far more DynInsts than it ever has
    // in flight, so pooled recycling must engage; and a second run
    // must be bit-identical to the first (recycled blocks carry no
    // state across instructions).
    Program prog = workloads::build("compress", 1);
    SimConfig cfg = cfgAt(FillOptimizations::all(), "all");
    SimResult a = simulate(prog, cfg);
    SimResult b = simulate(prog, cfg);
    EXPECT_EQ(a.retired, kTestInsts);
    expectIdentical(a, b);
}

TEST(SimRunner, ThreadCountDoesNotChangeResults)
{
    SimConfig cfg = cfgAt(FillOptimizations::all(), "all");
    SimRunner one(1);
    SimRunner eight(8);
    SimResult a = one.run("m88ksim", cfg);
    SimResult b = eight.run("m88ksim", cfg);
    expectIdentical(a, b);
}

} // namespace
} // namespace tcfill
