/** @file Unit tests for rename state and the execution core. */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "uarch/exec_core.hh"
#include "uarch/rename.hh"

namespace tcfill
{
namespace
{

DynInstPtr
makeInst(InstSeqNum seq, Op op = Op::ADD, int fu = 0)
{
    DynInstPtr di = allocDynInst();
    di->seq = seq;
    di->inst.op = op;
    di->inst.dest = 3;
    di->inst.src1 = 1;
    di->inst.src2 = 2;
    di->latency = opInfo(op).latency;
    di->fu = fu;
    di->numSrcs = 2;
    di->issueCycle = 0;
    return di;
}

// ---- rename table -------------------------------------------------------

TEST(Rename, ReadsAreReadyByDefault)
{
    RenameTable rt;
    Operand op = rt.read(5);
    EXPECT_EQ(op.producer, nullptr);
    EXPECT_EQ(op.rfAvail, 0u);
}

TEST(Rename, WriteAndRead)
{
    RenameTable rt;
    DynInstPtr p = makeInst(1);
    rt.write(5, p);
    EXPECT_EQ(rt.read(5).producer, p);
    // R0 is never mapped.
    rt.write(0, p);
    EXPECT_EQ(rt.read(0).producer, nullptr);
}

TEST(Rename, AliasForMoves)
{
    RenameTable rt;
    DynInstPtr p = makeInst(1);
    rt.write(5, p);
    rt.alias(7, rt.read(5));
    EXPECT_EQ(rt.read(7).producer, p);
}

TEST(Rename, RebuildReplaysSurvivors)
{
    RenameTable rt;
    std::deque<DynInstPtr> window;
    DynInstPtr a = makeInst(1);
    a->inst.dest = 5;
    DynInstPtr b = makeInst(2);
    b->inst.dest = 5;
    b->phase = InstPhase::Squashed;
    DynInstPtr c = makeInst(3);
    c->inst.dest = 6;
    c->inactive = true;             // unresolved inactive: skipped
    window = {a, b, c};
    rt.rebuild(window);
    EXPECT_EQ(rt.read(5).producer, a);      // b was squashed
    EXPECT_EQ(rt.read(6).producer, nullptr); // c is inactive
}

TEST(Rename, RebuildHonorsMoveAliases)
{
    RenameTable rt;
    std::deque<DynInstPtr> window;
    DynInstPtr p = makeInst(1);
    p->inst.dest = 5;
    DynInstPtr mv = makeInst(2);
    mv->inst.dest = 7;
    mv->moveMarked = true;
    mv->moveAlias = Operand{p, 0};
    window = {p, mv};
    rt.rebuild(window);
    EXPECT_EQ(rt.read(7).producer, p);
}

// ---- execution core ----------------------------------------------------

struct CoreHarness
{
    explicit CoreHarness(SchedulerKind kind = SchedulerKind::Wakeup)
        : mem(), core(makeParams(kind), mem)
    {
        core.setCompleteHook(&CoreHarness::onComplete, this);
    }

    static ExecCoreParams
    makeParams(SchedulerKind kind)
    {
        ExecCoreParams p;
        p.scheduler = kind;
        return p;
    }

    static void
    onComplete(void *ctx, DynInst &di)
    {
        static_cast<CoreHarness *>(ctx)->completed.push_back(
            DynInstPtr(&di));
    }

    void tick(Cycle now) { core.tick(now); }

    std::vector<DynInstPtr> completed;

    MemoryHierarchy mem;
    ExecCore core;
};

/** Every core-semantics test runs under both schedulers. */
class ExecCoreTest : public ::testing::TestWithParam<SchedulerKind>
{
  protected:
    ExecCoreTest() : h(GetParam()) {}

    CoreHarness h;
};

std::string
schedulerName(const ::testing::TestParamInfo<SchedulerKind> &p)
{
    return p.param == SchedulerKind::Wakeup ? "Wakeup" : "Scan";
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, ExecCoreTest,
    ::testing::Values(SchedulerKind::Wakeup, SchedulerKind::Scan),
    schedulerName);

TEST_P(ExecCoreTest, Geometry)
{
    EXPECT_EQ(h.core.numFus(), 16u);
    EXPECT_EQ(h.core.rsFree(0), 32u);
}

TEST_P(ExecCoreTest, ScheduleStageDelaysExecution)
{
    DynInstPtr di = makeInst(1);
    di->issueCycle = 5;
    h.core.dispatch(di);
    h.tick(5);      // same cycle as issue: not eligible
    EXPECT_TRUE(h.completed.empty());
    h.tick(6);      // schedule stage has passed
    ASSERT_EQ(h.completed.size(), 1u);
    EXPECT_EQ(di->startCycle, 6u);
    EXPECT_EQ(di->completeCycle, 7u);
}

TEST_P(ExecCoreTest, WaitsForProducer)
{
    DynInstPtr prod = makeInst(1, Op::MUL, 0);
    DynInstPtr cons = makeInst(2, Op::ADD, 1);
    cons->src[0].producer = prod;
    h.core.dispatch(prod);
    h.core.dispatch(cons);
    h.tick(1);      // prod starts; completes at 1+3=4
    EXPECT_EQ(prod->startCycle, 1u);
    h.tick(2);
    h.tick(3);
    EXPECT_EQ(cons->startCycle, kNoCycle);
    h.tick(4);      // same cluster: result available at 4
    EXPECT_EQ(cons->startCycle, 4u);
}

TEST_P(ExecCoreTest, CrossClusterBypassCostsACycle)
{
    DynInstPtr prod = makeInst(1, Op::ADD, 0);      // cluster 0
    DynInstPtr cons = makeInst(2, Op::ADD, 4);      // cluster 1
    cons->src[0].producer = prod;
    h.core.dispatch(prod);
    h.core.dispatch(cons);
    h.tick(1);      // prod executes, completes at 2
    h.tick(2);      // value not yet across the cluster boundary
    EXPECT_EQ(cons->startCycle, kNoCycle);
    h.tick(3);
    EXPECT_EQ(cons->startCycle, 3u);
    EXPECT_TRUE(cons->bypassDelayed);
}

TEST_P(ExecCoreTest, SameClusterBackToBack)
{
    DynInstPtr prod = makeInst(1, Op::ADD, 0);
    DynInstPtr cons = makeInst(2, Op::ADD, 1);      // same cluster
    cons->src[0].producer = prod;
    h.core.dispatch(prod);
    h.core.dispatch(cons);
    h.tick(1);
    h.tick(2);
    EXPECT_EQ(cons->startCycle, 2u);
    EXPECT_FALSE(cons->bypassDelayed);
}

TEST_P(ExecCoreTest, OldestFirstSelection)
{
    DynInstPtr young = makeInst(10, Op::ADD, 0);
    DynInstPtr old = makeInst(5, Op::ADD, 0);
    h.core.dispatch(young);
    h.core.dispatch(old);
    h.tick(1);
    EXPECT_EQ(old->startCycle, 1u);
    EXPECT_EQ(young->startCycle, kNoCycle);     // FU busy
    h.tick(2);
    EXPECT_EQ(young->startCycle, 2u);
}

TEST_P(ExecCoreTest, DivideIsUnpipelined)
{
    DynInstPtr div = makeInst(1, Op::DIV, 0);
    DynInstPtr next = makeInst(2, Op::ADD, 0);
    h.core.dispatch(div);
    h.core.dispatch(next);
    h.tick(1);
    EXPECT_EQ(div->completeCycle, 1u + 12);
    for (Cycle c = 2; c <= 12; ++c)
        h.tick(c);
    EXPECT_EQ(next->startCycle, kNoCycle);      // FU still busy
    h.tick(13);
    EXPECT_EQ(next->startCycle, 13u);
}

TEST_P(ExecCoreTest, StoreAddrKnownThenDataCompletes)
{
    DynInstPtr data = makeInst(1, Op::MUL, 0);
    DynInstPtr st = makeInst(2, Op::SW, 1);
    st->isStore = true;
    st->onCorrectPath = true;
    st->effAddr = 0x1000;
    st->numSrcs = 2;
    st->dataOperand = 1;
    st->src[1].producer = data;     // store data still in flight
    h.core.dispatch(data);
    h.core.dispatch(st);
    h.tick(1);      // both select: store AGENs without its data
    EXPECT_EQ(st->addrKnown, 2u);
    // The MUL's completion time became known the same cycle, so the
    // store's completion resolves immediately to max(addr, data).
    EXPECT_EQ(st->phase, InstPhase::Complete);
    EXPECT_EQ(st->completeCycle, 4u);
}

TEST_P(ExecCoreTest, LoadBlockedByUnknownStoreAddress)
{
    DynInstPtr base = makeInst(1, Op::MUL, 0);  // store address chain
    DynInstPtr st = makeInst(2, Op::SW, 1);
    st->isStore = true;
    st->onCorrectPath = true;
    st->effAddr = 0x2000;
    st->numSrcs = 2;
    st->dataOperand = 1;
    st->src[0].producer = base;     // address unknown until MUL done
    DynInstPtr ld = makeInst(3, Op::LW, 2);
    ld->isLoad = true;
    ld->onCorrectPath = true;
    ld->effAddr = 0x3000;           // disjoint address, still blocked
    h.core.dispatch(base);
    h.core.dispatch(st);
    h.core.dispatch(ld);
    h.tick(1);
    EXPECT_EQ(ld->startCycle, kNoCycle);    // no bypassing unknowns
    h.tick(2);
    h.tick(3);
    h.tick(4);      // base done at 4 -> store AGEN at 4
    h.tick(5);      // addrKnown = 5
    EXPECT_EQ(ld->startCycle, 5u);
}

TEST_P(ExecCoreTest, StoreToLoadForwarding)
{
    DynInstPtr st = makeInst(1, Op::SW, 0);
    st->isStore = true;
    st->onCorrectPath = true;
    st->effAddr = 0x4000;
    st->numSrcs = 2;
    st->dataOperand = 1;
    DynInstPtr ld = makeInst(2, Op::LW, 1);
    ld->isLoad = true;
    ld->onCorrectPath = true;
    ld->effAddr = 0x4000;           // same word
    h.core.dispatch(st);
    h.core.dispatch(ld);
    h.tick(1);
    h.tick(2);
    h.tick(3);
    // Forwarded: complete = max(agen, store data) + 1, no cache trip.
    EXPECT_NE(ld->startCycle, kNoCycle);
    EXPECT_EQ(ld->completeCycle, std::max(ld->startCycle + 1,
                                          st->completeCycle) + 1);
}

TEST_P(ExecCoreTest, SquashRangeRemovesFromStations)
{
    DynInstPtr a = makeInst(1, Op::ADD, 0);
    DynInstPtr b = makeInst(2, Op::ADD, 1);
    DynInstPtr c = makeInst(3, Op::ADD, 2);
    // Make them un-ready so they stay in the stations.
    DynInstPtr never = makeInst(99, Op::ADD, 15);
    never->issueCycle = kNoCycle;
    for (auto &di : {a, b, c})
        di->src[0].producer = never;
    h.core.dispatch(a);
    h.core.dispatch(b);
    h.core.dispatch(c);
    h.core.squashRange(2, ~InstSeqNum(0), 3, 4);    // squash b, rescue c
    EXPECT_TRUE(b->squashed());
    EXPECT_FALSE(a->squashed());
    EXPECT_FALSE(c->squashed());
    EXPECT_EQ(h.core.occupancy(), 2u);
}

TEST_P(ExecCoreTest, WrongPathLoadsSkipCaches)
{
    DynInstPtr ld = makeInst(1, Op::LW, 0);
    ld->isLoad = true;
    ld->onCorrectPath = false;      // wrong path: fixed fake latency
    h.core.dispatch(ld);
    h.tick(1);
    EXPECT_EQ(ld->completeCycle, 3u);
    EXPECT_EQ(h.mem.l1d().hits() + h.mem.l1d().misses(), 0u);
}

TEST(ExecCoreDeath, DispatchWithoutFuPanics)
{
    CoreHarness h;
    DynInstPtr di = makeInst(1);
    di->fu = -1;
    EXPECT_DEATH(h.core.dispatch(di), "no FU");
}

} // namespace
} // namespace tcfill
