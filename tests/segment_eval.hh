/**
 * @file
 * Test-only dataflow evaluator for trace segments: computes every
 * instruction's result from live-in register values using the
 * segment's explicit dependency indices and optimization metadata
 * (move aliasing, rewritten immediates, scaled operands). Loads read
 * a deterministic pseudo-memory keyed by effective address, so two
 * segments are value-equivalent iff they compute identical results,
 * addresses and branch conditions — the property every fill-unit
 * optimization must preserve (paper §4).
 */

#ifndef TCFILL_TESTS_SEGMENT_EVAL_HH
#define TCFILL_TESTS_SEGMENT_EVAL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/segment.hh"

namespace tcfill::test
{

/** Per-instruction observable outcome. */
struct EvalOutcome
{
    std::uint32_t result = 0;       ///< destination value (if any)
    std::uint32_t effAddr = 0;      ///< memory address (if mem op)
    std::uint32_t storeData = 0;    ///< store data (if store)
    bool branchTaken = false;       ///< condition (if cond branch)

    bool operator==(const EvalOutcome &) const = default;
};

/** Deterministic stand-in for memory contents. */
inline std::uint32_t
pseudoLoad(std::uint32_t addr)
{
    std::uint32_t z = addr * 0x9e3779b9u;
    z ^= z >> 16;
    return z * 0x85ebca6bu;
}

/**
 * Evaluate @p seg against live-in register values. Dependencies are
 * taken from srcDep (internal) or @p livein (entry state), exactly as
 * the rename hardware resolves them; marked moves produce their
 * aliased source value.
 */
inline std::vector<EvalOutcome>
evaluateSegment(const TraceSegment &seg,
                const std::array<std::uint32_t, kNumArchRegs> &livein)
{
    std::vector<EvalOutcome> out(seg.size());

    auto value_of = [&](std::size_t i) { return out[i].result; };

    for (std::size_t i = 0; i < seg.size(); ++i) {
        const TraceInst &ti = seg.insts[i];
        const Instruction &in = ti.inst;

        // Resolve operands (with scaling applied to the marked slot).
        std::uint32_t v[3] = {0, 0, 0};
        const unsigned nsrcs = in.numSrcs();
        for (unsigned k = 0; k < nsrcs; ++k) {
            RegIndex r = in.srcReg(k);
            std::uint32_t val;
            if (r == kRegZero) {
                val = 0;
            } else if (ti.srcDep[k] >= 0) {
                val = value_of(static_cast<std::size_t>(ti.srcDep[k]));
            } else {
                val = livein[r];
            }
            if (ti.scaledSrcIdx == k)
                val <<= ti.scaleAmt;
            v[k] = val;
        }

        EvalOutcome &o = out[i];

        if (ti.isMove) {
            // The rename logic supplies the aliased source value.
            if (ti.moveSrcDep >= 0) {
                o.result =
                    value_of(static_cast<std::size_t>(ti.moveSrcDep));
            } else if (ti.moveSrc == kRegZero ||
                       ti.moveSrc == Instruction::kNoReg) {
                o.result = 0;
            } else {
                o.result = livein[ti.moveSrc];
            }
            continue;
        }

        auto imm = static_cast<std::uint32_t>(in.imm);
        auto s1 = v[0], s2 = v[1];
        switch (in.op) {
          case Op::ADD:  o.result = s1 + s2; break;
          case Op::SUB:  o.result = s1 - s2; break;
          case Op::AND:  o.result = s1 & s2; break;
          case Op::OR:   o.result = s1 | s2; break;
          case Op::XOR:  o.result = s1 ^ s2; break;
          case Op::NOR:  o.result = ~(s1 | s2); break;
          case Op::SLT:
            o.result = static_cast<std::int32_t>(s1) <
                       static_cast<std::int32_t>(s2);
            break;
          case Op::SLTU: o.result = s1 < s2; break;
          case Op::SLLV: o.result = s1 << (s2 & 31); break;
          case Op::SRLV: o.result = s1 >> (s2 & 31); break;
          case Op::SRAV:
            o.result = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(s1) >> (s2 & 31));
            break;
          case Op::MUL:  o.result = s1 * s2; break;
          case Op::DIV:
            o.result = s2 == 0 ? 0
                : static_cast<std::uint32_t>(
                      static_cast<std::int32_t>(s1) /
                      static_cast<std::int32_t>(s2));
            break;
          case Op::ADDI: o.result = s1 + imm; break;
          case Op::SLTI:
            o.result = static_cast<std::int32_t>(s1) < in.imm;
            break;
          case Op::SLTIU: o.result = s1 < imm; break;
          case Op::ANDI: o.result = s1 & imm; break;
          case Op::ORI:  o.result = s1 | imm; break;
          case Op::XORI: o.result = s1 ^ imm; break;
          case Op::LUI:  o.result = imm << 16; break;
          case Op::SLLI: o.result = s1 << in.shamt; break;
          case Op::SRLI: o.result = s1 >> in.shamt; break;
          case Op::SRAI:
            o.result = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(s1) >> in.shamt);
            break;

          case Op::LB: case Op::LBU: case Op::LH: case Op::LHU:
          case Op::LW:
            o.effAddr = s1 + imm;
            o.result = pseudoLoad(o.effAddr);
            break;
          case Op::LWX:
            o.effAddr = s1 + s2;
            o.result = pseudoLoad(o.effAddr);
            break;
          case Op::SB: case Op::SH: case Op::SW:
            o.effAddr = s1 + imm;
            o.storeData = v[1];
            break;
          case Op::SWX:
            o.effAddr = s1 + s2;
            o.storeData = v[2];
            break;

          case Op::BEQ:  o.branchTaken = s1 == s2; break;
          case Op::BNE:  o.branchTaken = s1 != s2; break;
          case Op::BLEZ:
            o.branchTaken = static_cast<std::int32_t>(s1) <= 0;
            break;
          case Op::BGTZ:
            o.branchTaken = static_cast<std::int32_t>(s1) > 0;
            break;
          case Op::BLTZ:
            o.branchTaken = static_cast<std::int32_t>(s1) < 0;
            break;
          case Op::BGEZ:
            o.branchTaken = static_cast<std::int32_t>(s1) >= 0;
            break;

          default:
            break;    // J/JAL/JR/JALR/NOP/SYSCALL/HALT: no dataflow
        }
    }
    return out;
}

} // namespace tcfill::test

#endif // TCFILL_TESTS_SEGMENT_EVAL_HH
