/** @file Unit tests for the ISA: encode/decode, properties, moves. */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcodes.hh"

namespace tcfill
{
namespace
{

Instruction
r3(Op op, RegIndex rd, RegIndex rs, RegIndex rt)
{
    Instruction in;
    in.op = op;
    in.dest = rd;
    in.src1 = rs;
    in.src2 = rt;
    return in;
}

Instruction
i2(Op op, RegIndex rt, RegIndex rs, std::int32_t imm)
{
    Instruction in;
    in.op = op;
    in.dest = rt;
    in.src1 = rs;
    in.imm = imm;
    return in;
}

// ---- encode/decode round trips ----------------------------------------

TEST(IsaCodec, RTypeRoundTrip)
{
    for (Op op : {Op::ADD, Op::SUB, Op::AND, Op::OR, Op::XOR, Op::NOR,
                  Op::SLT, Op::SLTU, Op::MUL, Op::DIV}) {
        Instruction in = r3(op, 3, 7, 21);
        EXPECT_EQ(decode(encode(in)), in) << mnemonic(op);
    }
}

TEST(IsaCodec, ShiftImmRoundTrip)
{
    for (unsigned sh : {1u, 2u, 3u, 15u, 31u}) {
        Instruction in;
        in.op = Op::SLLI;
        in.dest = 5;
        in.src1 = 9;
        in.shamt = static_cast<std::uint8_t>(sh);
        EXPECT_EQ(decode(encode(in)), in);
        in.op = Op::SRLI;
        EXPECT_EQ(decode(encode(in)), in);
        in.op = Op::SRAI;
        EXPECT_EQ(decode(encode(in)), in);
    }
}

TEST(IsaCodec, VariableShiftOperandOrder)
{
    // sllv rd, value, amount: value travels in rt, amount in rs.
    Instruction in = r3(Op::SLLV, 4, 8, 9);
    Instruction out = decode(encode(in));
    EXPECT_EQ(out.op, Op::SLLV);
    EXPECT_EQ(out.src1, 8);    // value
    EXPECT_EQ(out.src2, 9);    // amount
}

TEST(IsaCodec, ImmediateRoundTrip)
{
    for (std::int32_t imm : {-32768, -1, 0, 1, 4, 32767}) {
        Instruction in = i2(Op::ADDI, 2, 3, imm);
        EXPECT_EQ(decode(encode(in)), in) << imm;
    }
    // Logical immediates are zero-extended.
    Instruction in = i2(Op::ORI, 2, 3, 0xffff);
    EXPECT_EQ(decode(encode(in)), in);
    in = i2(Op::ANDI, 2, 3, 0x8000);
    EXPECT_EQ(decode(encode(in)), in);
}

TEST(IsaCodec, MemoryRoundTrip)
{
    for (Op op : {Op::LB, Op::LBU, Op::LH, Op::LHU, Op::LW}) {
        Instruction in;
        in.op = op;
        in.dest = 8;
        in.src1 = 29;
        in.imm = -64;
        EXPECT_EQ(decode(encode(in)), in) << mnemonic(op);
    }
    for (Op op : {Op::SB, Op::SH, Op::SW}) {
        Instruction in;
        in.op = op;
        in.src1 = 29;
        in.src3 = 8;
        in.imm = 12;
        EXPECT_EQ(decode(encode(in)), in) << mnemonic(op);
    }
}

TEST(IsaCodec, IndexedMemoryRoundTrip)
{
    Instruction lwx;
    lwx.op = Op::LWX;
    lwx.dest = 4;
    lwx.src1 = 16;
    lwx.src2 = 9;
    EXPECT_EQ(decode(encode(lwx)), lwx);

    Instruction swx;
    swx.op = Op::SWX;
    swx.src1 = 16;
    swx.src2 = 9;
    swx.src3 = 4;
    EXPECT_EQ(decode(encode(swx)), swx);
}

TEST(IsaCodec, ControlRoundTrip)
{
    Instruction beq;
    beq.op = Op::BEQ;
    beq.src1 = 1;
    beq.src2 = 2;
    beq.imm = -100;
    EXPECT_EQ(decode(encode(beq)), beq);

    for (Op op : {Op::BLEZ, Op::BGTZ, Op::BLTZ, Op::BGEZ}) {
        Instruction b;
        b.op = op;
        b.src1 = 7;
        b.imm = 50;
        EXPECT_EQ(decode(encode(b)), b) << mnemonic(op);
    }

    Instruction j;
    j.op = Op::J;
    j.imm = 0x123456;
    EXPECT_EQ(decode(encode(j)), j);

    Instruction jal;
    jal.op = Op::JAL;
    jal.dest = kRegRA;
    jal.imm = 0x100000;
    EXPECT_EQ(decode(encode(jal)), jal);

    Instruction jr;
    jr.op = Op::JR;
    jr.src1 = kRegRA;
    EXPECT_EQ(decode(encode(jr)), jr);

    Instruction jalr;
    jalr.op = Op::JALR;
    jalr.dest = 31;
    jalr.src1 = 9;
    EXPECT_EQ(decode(encode(jalr)), jalr);
}

TEST(IsaCodec, MiscRoundTrip)
{
    Instruction nop;
    nop.op = Op::NOP;
    EXPECT_EQ(encode(nop), 0u);
    EXPECT_EQ(decode(0).op, Op::NOP);

    Instruction sys;
    sys.op = Op::SYSCALL;
    EXPECT_EQ(decode(encode(sys)).op, Op::SYSCALL);

    Instruction halt;
    halt.op = Op::HALT;
    EXPECT_EQ(decode(encode(halt)).op, Op::HALT);
}

TEST(IsaCodec, UnknownEncodingsDecodeToNop)
{
    // An R-type with an unused funct value.
    EXPECT_EQ(decode(0x0000003fu).op, Op::NOP);
}

// ---- predicates -----------------------------------------------------

TEST(IsaProps, ClassPredicates)
{
    EXPECT_TRUE(isLoad(Op::LWX));
    EXPECT_TRUE(isStore(Op::SWX));
    EXPECT_TRUE(isMem(Op::SB));
    EXPECT_FALSE(isMem(Op::ADD));
    EXPECT_TRUE(isControl(Op::JAL));
    EXPECT_TRUE(isCondBranch(Op::BGEZ));
    EXPECT_FALSE(isCondBranch(Op::J));
    EXPECT_TRUE(isUncondDirect(Op::J));
    EXPECT_TRUE(isCall(Op::JALR));
    EXPECT_TRUE(isIndirect(Op::JR));
    EXPECT_FALSE(isIndirect(Op::JAL));
    EXPECT_TRUE(isSerializing(Op::SYSCALL));
    EXPECT_TRUE(isSerializing(Op::HALT));
}

TEST(IsaProps, ReturnRequiresLinkRegister)
{
    Instruction jr;
    jr.op = Op::JR;
    jr.src1 = kRegRA;
    EXPECT_TRUE(jr.isReturn());
    jr.src1 = 9;
    EXPECT_FALSE(jr.isReturn());
}

TEST(IsaProps, SourceEnumeration)
{
    Instruction swx;
    swx.op = Op::SWX;
    swx.src1 = 16;
    swx.src2 = 9;
    swx.src3 = 4;
    EXPECT_EQ(swx.numSrcs(), 3u);
    EXPECT_EQ(swx.srcReg(0), 16);
    EXPECT_EQ(swx.srcReg(1), 9);
    EXPECT_EQ(swx.srcReg(2), 4);

    Instruction sw;
    sw.op = Op::SW;
    sw.src1 = 29;
    sw.src3 = 8;
    EXPECT_EQ(sw.numSrcs(), 2u);
    EXPECT_EQ(sw.srcReg(0), 29);
    EXPECT_EQ(sw.srcReg(1), 8);
}

TEST(IsaProps, DestToR0IsNoDest)
{
    Instruction in = i2(Op::ADDI, kRegZero, 3, 5);
    EXPECT_FALSE(in.hasDest());
}

TEST(IsaProps, LatenciesMatchModel)
{
    EXPECT_EQ(opInfo(Op::ADD).latency, 1);
    EXPECT_EQ(opInfo(Op::MUL).latency, 3);
    EXPECT_EQ(opInfo(Op::DIV).latency, 12);
    EXPECT_EQ(opClass(Op::DIV), OpClass::IntDiv);
    EXPECT_EQ(opClass(Op::BEQ), OpClass::Control);
}

// ---- register-move detection (paper §4.2 idioms) ---------------------

TEST(MoveDetect, AddiZeroImmediate)
{
    auto ms = moveSource(i2(Op::ADDI, 4, 7, 0));
    ASSERT_TRUE(ms.has_value());
    EXPECT_EQ(*ms, 7);
    EXPECT_FALSE(moveSource(i2(Op::ADDI, 4, 7, 1)).has_value());
}

TEST(MoveDetect, RZeroForms)
{
    EXPECT_EQ(*moveSource(r3(Op::ADD, 4, 7, kRegZero)), 7);
    EXPECT_EQ(*moveSource(r3(Op::ADD, 4, kRegZero, 7)), 7);
    EXPECT_EQ(*moveSource(r3(Op::OR, 4, 7, kRegZero)), 7);
    EXPECT_EQ(*moveSource(r3(Op::XOR, 4, kRegZero, 7)), 7);
    EXPECT_EQ(*moveSource(r3(Op::SUB, 4, 7, kRegZero)), 7);
    // SUB with R0 minuend negates: not a move.
    EXPECT_FALSE(moveSource(r3(Op::SUB, 4, kRegZero, 7)).has_value());
    // Plain register add is not a move.
    EXPECT_FALSE(moveSource(r3(Op::ADD, 4, 7, 8)).has_value());
}

TEST(MoveDetect, ZeroShift)
{
    Instruction in;
    in.op = Op::SLLI;
    in.dest = 4;
    in.src1 = 7;
    in.shamt = 0;
    EXPECT_EQ(*moveSource(in), 7);
    in.shamt = 1;
    EXPECT_FALSE(moveSource(in).has_value());
}

TEST(MoveDetect, ZeroIdiom)
{
    // Materializing zero from R0 also aliases.
    auto ms = moveSource(i2(Op::ADDI, 4, kRegZero, 0));
    ASSERT_TRUE(ms.has_value());
    EXPECT_EQ(*ms, kRegZero);
}

TEST(MoveDetect, MoveToR0IsDead)
{
    EXPECT_FALSE(moveSource(i2(Op::ADDI, kRegZero, 7, 0)).has_value());
}

// ---- disassembler smoke -------------------------------------------------

TEST(Disasm, Representative)
{
    EXPECT_EQ(disassemble(r3(Op::ADD, 3, 1, 2)), "add r3, r1, r2");
    EXPECT_EQ(disassemble(i2(Op::ADDI, 3, 1, -4)), "addi r3, r1, -4");
    Instruction lw;
    lw.op = Op::LW;
    lw.dest = 5;
    lw.src1 = 29;
    lw.imm = 8;
    EXPECT_EQ(disassemble(lw), "lw r5, 8(r29)");
    Instruction beq;
    beq.op = Op::BEQ;
    beq.src1 = 1;
    beq.src2 = 0;
    beq.imm = 3;
    EXPECT_EQ(disassemble(beq), "beq r1, r0, +3");
    EXPECT_EQ(disassemble(beq, 0x1000), "beq r1, r0, +3 -> 0x1010");
}

/** Property sweep: decode(encode(x)) == x over randomized fields. */
class CodecFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CodecFuzz, RoundTripAllOps)
{
    unsigned seed = GetParam();
    // Walk every op with seed-derived registers and immediates.
    for (unsigned o = 0; o < unsigned(Op::NumOps); ++o) {
        Op op = static_cast<Op>(o);
        Instruction in;
        in.op = op;
        RegIndex a = (seed * 7 + o) % 32;
        RegIndex b = (seed * 13 + o) % 32;
        RegIndex c = (seed * 29 + o) % 32;
        std::int32_t imm16 =
            static_cast<std::int32_t>((seed * 31 + o * 97) % 65536) -
            32768;
        switch (opClass(op)) {
          case OpClass::IntAlu:
          case OpClass::IntMul:
          case OpClass::IntDiv:
            if (op == Op::SLLI || op == Op::SRLI || op == Op::SRAI) {
                in.dest = a; in.src1 = b;
                in.shamt = static_cast<std::uint8_t>(seed % 32);
            } else if (op == Op::LUI) {
                in.dest = a;
                in.imm = static_cast<std::int32_t>(seed % 65536);
            } else if (op == Op::ADDI || op == Op::SLTI ||
                       op == Op::SLTIU) {
                in.dest = a; in.src1 = b; in.imm = imm16;
            } else if (op == Op::ANDI || op == Op::ORI ||
                       op == Op::XORI) {
                in.dest = a; in.src1 = b;
                in.imm = static_cast<std::int32_t>(seed % 65536);
            } else {
                in.dest = a; in.src1 = b; in.src2 = c;
            }
            break;
          case OpClass::Load:
            in.dest = a; in.src1 = b;
            if (op == Op::LWX)
                in.src2 = c;
            else
                in.imm = imm16;
            break;
          case OpClass::Store:
            in.src1 = b; in.src3 = a;
            if (op == Op::SWX)
                in.src2 = c;
            else
                in.imm = imm16;
            break;
          case OpClass::Control:
            if (op == Op::J) {
                in.imm = static_cast<std::int32_t>(seed % (1 << 26));
            } else if (op == Op::JAL) {
                in.dest = kRegRA;
                in.imm = static_cast<std::int32_t>(seed % (1 << 26));
            } else if (op == Op::JR) {
                in.src1 = b;
            } else if (op == Op::JALR) {
                in.dest = a; in.src1 = b;
            } else if (op == Op::BEQ || op == Op::BNE) {
                in.src1 = a; in.src2 = b; in.imm = imm16;
            } else {
                in.src1 = a; in.imm = imm16;
            }
            break;
          case OpClass::Other:
            break;
        }
        // NOP with any fields encodes as the canonical zero word.
        if (op == Op::NOP)
            in = Instruction{};
        EXPECT_EQ(decode(encode(in)), in)
            << mnemonic(op) << " seed=" << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Range(1u, 26u));

} // namespace
} // namespace tcfill
