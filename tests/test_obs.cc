/**
 * @file
 * Observability layer tests: JSON writer/parser round-trips, stats
 * group JSON hierarchy, SimResult serialization, per-instruction
 * pipeline tracing (event ordering and the trace-never-perturbs
 * guarantee), and byte-identical stats documents across SimRunner
 * thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string_view>

#include "asm/builder.hh"
#include "common/stats.hh"
#include "obs/host_prof.hh"
#include "obs/json.hh"
#include "obs/pipe_trace.hh"
#include "obs/timeline.hh"
#include "obs/trace_events.hh"
#include "sim/processor.hh"
#include "sim/runner.hh"
#include "sim/stats_io.hh"
#include "tracefile/replay.hh"

namespace tcfill
{
namespace
{

using obs::JsonValue;
using obs::JsonWriter;
using obs::ObjectReader;

/** Counted loop with loads, stores and a bit of arithmetic. */
Program
loopProgram(int iters)
{
    ProgramBuilder pb("loop");
    Addr buf = pb.allocData(256, 8);
    pb.la(1, buf);
    pb.li(2, iters);
    pb.li(3, 0);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.add(3, 3, 2);
    pb.andi(4, 2, 7);
    pb.slli(5, 4, 2);
    pb.lwx(6, 1, 5);
    pb.add(3, 3, 6);
    pb.swx(3, 1, 5);
    pb.move(7, 3);
    pb.addi(2, 2, -1);
    pb.bgtz(2, top);
    pb.halt();
    return pb.finish();
}

// --------------------------------------------------------------------
// JSON writer / parser
// --------------------------------------------------------------------

TEST(Json, WriterParserRoundTrip)
{
    std::ostringstream ss;
    JsonWriter w(ss);
    w.beginObject();
    w.field("name", "trace \"cache\"\n\t\\");
    w.field("count", std::uint64_t(42));
    w.field("ratio", 0.375);
    w.field("neg", std::int64_t(-7));
    w.field("flag", true);
    w.beginArray("seq");
    w.value(std::uint64_t(1));
    w.value(std::uint64_t(2));
    w.value(std::uint64_t(3));
    w.endArray();
    w.beginObject("nested");
    w.field("deep", false);
    w.endObject();
    w.endObject();
    w.finish();

    JsonValue v = JsonValue::parse(ss.str());
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("name").str, "trace \"cache\"\n\t\\");
    EXPECT_EQ(v.at("count").u64(), 42u);
    EXPECT_DOUBLE_EQ(v.at("ratio").num(), 0.375);
    EXPECT_DOUBLE_EQ(v.at("neg").num(), -7.0);
    EXPECT_TRUE(v.at("flag").boolean);
    ASSERT_TRUE(v.at("seq").isArray());
    ASSERT_EQ(v.at("seq").arr.size(), 3u);
    EXPECT_EQ(v.at("seq").arr[2].u64(), 3u);
    EXPECT_FALSE(v.at("nested").at("deep").boolean);
    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_FALSE(JsonValue::tryParse("{").has_value());
    EXPECT_FALSE(JsonValue::tryParse("{\"a\":}").has_value());
    EXPECT_FALSE(JsonValue::tryParse("[1,]").has_value());
    EXPECT_FALSE(JsonValue::tryParse("\"unterminated").has_value());
    EXPECT_FALSE(JsonValue::tryParse("{} trailing").has_value());
    EXPECT_TRUE(JsonValue::tryParse("  {\"a\": [1, 2]}  ").has_value());
}

// Untrusted wire payloads (client sweep points, job frames) funnel
// numbers through u64()/ObjectReader::integer(); negative, fractional
// or out-of-range doubles must parse-error, not cast (UB).
TEST(Json, IntegerReaderRejectsHostileNumbers)
{
    for (const char *doc :
         {"{\"n\": -1}", "{\"n\": 1.5}", "{\"n\": 1e300}",
          "{\"n\": 4294967296}"}) {
        auto v = JsonValue::tryParse(doc);
        ASSERT_TRUE(v.has_value()) << doc;
        std::string err;
        ObjectReader r(*v, "doc", err);
        std::uint32_t n = 0;
        EXPECT_FALSE(r.integer("n", n)) << doc;
        EXPECT_NE(err.find("'n'"), std::string::npos) << err;
    }
    // In-range values still read back exactly, including u64's top end.
    auto v = JsonValue::parse("{\"small\": 7, \"big\": 4294967295, "
                              "\"zero\": 0}");
    std::string err;
    ObjectReader r(v, "doc", err);
    std::uint32_t small = 0, big = 0;
    std::uint64_t zero = 9;
    EXPECT_TRUE(r.integer("small", small));
    EXPECT_TRUE(r.integer("big", big));
    EXPECT_TRUE(r.integer("zero", zero));
    EXPECT_TRUE(r.finish()) << err;
    EXPECT_EQ(small, 7u);
    EXPECT_EQ(big, 4294967295u);
    EXPECT_EQ(zero, 0u);
    // Raw u64() degrades to 0 instead of UB on hostile values.
    EXPECT_EQ(JsonValue::parse("{\"n\": -3}").at("n").u64(), 0u);
    EXPECT_EQ(JsonValue::parse("{\"n\": 1e300}").at("n").u64(), 0u);
}

TEST(Json, NumberFormattingRoundTrips)
{
    // The writer's shortest-round-trip rendering must parse back to
    // the same double — that is what byte-stable documents rest on.
    for (double d : {0.0, 1.0, 0.1, 1.0 / 3.0, 12345.6789, 1e-9,
                     2.2250738585072014e-308}) {
        std::ostringstream ss;
        JsonWriter w(ss);
        w.beginObject();
        w.field("v", d);
        w.endObject();
        w.finish();
        JsonValue v = JsonValue::parse(ss.str());
        EXPECT_EQ(v.at("v").num(), d) << ss.str();
    }
}

// --------------------------------------------------------------------
// stats::Group JSON
// --------------------------------------------------------------------

TEST(StatsGroup, DumpJsonNestsDottedNames)
{
    stats::Group g("proc");
    stats::Counter hits, misses;
    ++hits; ++hits; ++hits;
    ++misses;
    g.addCounter("l1i.hits", hits, "hits");
    g.addCounter("l1i.misses", misses, "misses");
    g.addFormula("l1i.hitRate", [&] {
        return static_cast<double>(hits.value()) /
               static_cast<double>(hits.value() + misses.value());
    }, "rate");
    g.addCounter("retired", hits, "top-level alias");

    std::ostringstream ss;
    g.dumpJson(ss);
    JsonValue v = JsonValue::parse(ss.str());
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("l1i").at("hits").u64(), 3u);
    EXPECT_EQ(v.at("l1i").at("misses").u64(), 1u);
    EXPECT_DOUBLE_EQ(v.at("l1i").at("hitRate").num(), 0.75);
    EXPECT_EQ(v.at("retired").u64(), 3u);
}

TEST(StatsGroup, ProcessorDumpStatsJsonParses)
{
    Program p = loopProgram(200);
    Processor proc(p, SimConfig::withOpts(FillOptimizations::all()));
    proc.run();
    std::ostringstream ss;
    proc.dumpStatsJson(ss);
    JsonValue v = JsonValue::parse(ss.str());
    ASSERT_TRUE(v.isObject());
    // Spot-check a nested group registered by a subcomponent.
    EXPECT_GT(v.at("rename").at("reads").u64(), 0u);
    EXPECT_GT(v.at("rename").at("writes").u64(), 0u);
}

// --------------------------------------------------------------------
// SimResult JSON
// --------------------------------------------------------------------

TEST(SimResultJson, RoundTripMatchesRun)
{
    Program p = loopProgram(300);
    SimResult r = simulate(p, SimConfig::withOpts(
                                  FillOptimizations::all()));
    r.config = "all";

    std::ostringstream ss;
    JsonWriter w(ss);
    r.toJson(w, /*include_host=*/true);
    w.finish();

    JsonValue v = JsonValue::parse(ss.str());
    EXPECT_EQ(v.at("config").str, "all");
    EXPECT_EQ(v.at("retired").u64(), r.retired);
    EXPECT_EQ(v.at("cycles").u64(), r.cycles);
    EXPECT_EQ(v.at("ipc").num(), r.ipc());
    EXPECT_EQ(v.at("tcHits").u64(), r.tcHits);
    EXPECT_EQ(v.at("tcHitRate").num(), r.tcHitRate());
    EXPECT_EQ(v.at("dynMoves").u64(), r.dynMoves);
    EXPECT_EQ(v.at("fracTransformed").num(), r.fracTransformed());
    EXPECT_EQ(v.at("cacheHit").str, "computed");
    EXPECT_EQ(v.at("host").at("hostSeconds").num(), r.hostSeconds);

    // Deterministic mode omits the wall-clock section.
    std::ostringstream det;
    JsonWriter wd(det);
    r.toJson(wd, /*include_host=*/false);
    wd.finish();
    EXPECT_EQ(JsonValue::parse(det.str()).find("host"), nullptr);
}

// --------------------------------------------------------------------
// Pipeline tracer
// --------------------------------------------------------------------

#if TCFILL_PIPE_TRACE_ENABLED

TEST(PipeTrace, EventOrderingPerInstruction)
{
    Program p = loopProgram(300);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    obs::RecordingPipeTracer rec;
    Processor proc(p, cfg);
    proc.setTracer(&rec);
    SimResult r = proc.run();

    ASSERT_FALSE(rec.insts.empty());

    struct Life
    {
        std::map<obs::PipeStage, Cycle> stamp;
        std::map<obs::PipeStage, unsigned> count;
    };
    std::map<InstSeqNum, Life> lives;
    for (const obs::PipeEvent &ev : rec.insts) {
        lives[ev.seq].stamp[ev.stage] = ev.cycle;
        ++lives[ev.seq].count[ev.stage];
    }

    std::uint64_t retired = 0;
    for (const auto &[seq, life] : lives) {
        auto has = [&](obs::PipeStage s) {
            return life.stamp.count(s) != 0;
        };
        auto at = [&](obs::PipeStage s) { return life.stamp.at(s); };
        if (!has(obs::PipeStage::Retire)) {
            // Squashed or still in flight at the run limit.
            continue;
        }
        ++retired;
        SCOPED_TRACE(seq);
        // A retired instruction went through each stage exactly once
        // and never reported a squash.
        for (auto s : {obs::PipeStage::Fetch, obs::PipeStage::Rename,
                       obs::PipeStage::Issue, obs::PipeStage::Retire}) {
            ASSERT_TRUE(has(s));
            EXPECT_EQ(life.count.at(s), 1u);
        }
        EXPECT_FALSE(has(obs::PipeStage::Squash));
        // Lifecycle stamps are monotone through the pipeline.
        EXPECT_LE(at(obs::PipeStage::Fetch), at(obs::PipeStage::Rename));
        EXPECT_LE(at(obs::PipeStage::Rename), at(obs::PipeStage::Issue));
        EXPECT_LE(at(obs::PipeStage::Issue), at(obs::PipeStage::Retire));
        if (has(obs::PipeStage::Execute)) {
            EXPECT_LE(at(obs::PipeStage::Issue),
                      at(obs::PipeStage::Execute));
            EXPECT_LE(at(obs::PipeStage::Execute),
                      at(obs::PipeStage::Complete));
        }
    }
    // Every architected retirement produced a Retire event.
    EXPECT_EQ(retired, r.retired);
}

TEST(PipeTrace, FillEventsCountTransforms)
{
    Program p = loopProgram(300);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    obs::RecordingPipeTracer rec;
    Processor proc(p, cfg);
    proc.setTracer(&rec);
    SimResult r = proc.run();

    ASSERT_FALSE(rec.fills.empty());
    EXPECT_EQ(rec.fills.size(), r.segmentsBuilt);
    unsigned moves = 0;
    for (const obs::FillEvent &ev : rec.fills) {
        EXPECT_GT(ev.insts, 0u);
        EXPECT_GT(ev.blocks, 0u);
        EXPECT_LE(ev.movesMarked, ev.insts);
        EXPECT_LE(ev.reassociated, ev.insts);
        EXPECT_LE(ev.deadElided, ev.insts);
        moves += ev.movesMarked;
    }
    // The loop body contains an architectural move; with markMoves on
    // the fill unit must have annotated some.
    EXPECT_GT(moves, 0u);
}

TEST(PipeTrace, TracedAnnotationsMatchResultCounters)
{
    Program p = loopProgram(300);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    obs::RecordingPipeTracer rec;
    Processor proc(p, cfg);
    proc.setTracer(&rec);
    SimResult r = proc.run();

    std::uint64_t retired_moves = 0;
    for (const obs::PipeEvent &ev : rec.insts) {
        if (ev.stage == obs::PipeStage::Retire && ev.moveMarked)
            ++retired_moves;
    }
    EXPECT_EQ(retired_moves, r.dynMoves);
}

TEST(PipeTrace, JsonlEmitterProducesParseableLines)
{
    Program p = loopProgram(100);
    std::ostringstream ss;
    obs::JsonlPipeTracer tracer(ss);
    Processor proc(p, SimConfig::withOpts(FillOptimizations::all()));
    proc.setTracer(&tracer);
    proc.run();

    EXPECT_GT(tracer.events(), 0u);
    std::istringstream lines(ss.str());
    std::string line;
    std::uint64_t n = 0;
    while (std::getline(lines, line)) {
        ASSERT_TRUE(JsonValue::tryParse(line).has_value()) << line;
        ++n;
    }
    EXPECT_EQ(n, tracer.events());
}

#endif // TCFILL_PIPE_TRACE_ENABLED

TEST(PipeTrace, TracingNeverPerturbsTiming)
{
    // The acceptance bar: a traced run is bit-identical to an
    // untraced run of the same point (tracer compiled in, and both
    // attached and detached at runtime).
    Program p = loopProgram(300);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());

    Processor plain(p, cfg);
    SimResult base = plain.run();

#if TCFILL_PIPE_TRACE_ENABLED
    obs::RecordingPipeTracer rec;
    Processor traced(p, cfg);
    traced.setTracer(&rec);
    SimResult r = traced.run();
#else
    Processor traced(p, cfg);
    SimResult r = traced.run();
#endif

    EXPECT_EQ(r.retired, base.retired);
    EXPECT_EQ(r.cycles, base.cycles);
    EXPECT_EQ(r.ipc(), base.ipc());  // bitwise, not approximate
    EXPECT_EQ(r.tcHits, base.tcHits);
    EXPECT_EQ(r.mispredicts, base.mispredicts);
    EXPECT_EQ(r.dynMoves, base.dynMoves);
    EXPECT_EQ(r.dynReassoc, base.dynReassoc);
}

// --------------------------------------------------------------------
// Stats documents
// --------------------------------------------------------------------

namespace
{

/** Run a fixed submission sequence through a pool; return the doc. */
std::string
statsDocument(unsigned threads)
{
    SimRunner pool(threads);
    SimConfig base = SimConfig::withOpts(FillOptimizations::none());
    base.name = "baseline";
    base.maxInsts = 20'000;
    SimConfig all = SimConfig::withOpts(FillOptimizations::all());
    all.name = "all";
    all.maxInsts = 20'000;

    std::vector<SimResult> results;
    for (const char *w : {"compress", "li"}) {
        for (const SimConfig *cfg : {&base, &all})
            results.push_back(pool.run(w, *cfg));
    }
    // One deliberate repeat: exercises the cacheHit provenance path.
    results.push_back(pool.run("compress", base));

    obs::SweepProgress snap = pool.progress();
    std::ostringstream ss;
    writeStatsJson(ss, "test_obs", results, &snap,
                   /*include_host=*/false);
    return ss.str();
}

} // namespace

TEST(StatsJson, ByteIdenticalAcrossThreadCounts)
{
    const std::string doc1 = statsDocument(1);
    const std::string doc8 = statsDocument(8);
    EXPECT_EQ(doc1, doc8);

    JsonValue v = JsonValue::parse(doc1);
    EXPECT_EQ(v.at("schema").str, "tcfill-stats-v1");
    EXPECT_EQ(v.at("generator").str, "test_obs");
    ASSERT_TRUE(v.at("results").isArray());
    ASSERT_EQ(v.at("results").arr.size(), 5u);
    // Deterministic documents carry no wall-clock section anywhere.
    EXPECT_EQ(v.find("host"), nullptr);
    for (const JsonValue &r : v.at("results").arr)
        EXPECT_EQ(r.find("host"), nullptr);
    // Sweep counters: 5 submissions (4 distinct + 1 cache hit).
    const JsonValue &sweep = v.at("sweep");
    EXPECT_EQ(sweep.at("points").u64(), 5u);
    EXPECT_EQ(sweep.at("done").u64(), 5u);
    EXPECT_EQ(sweep.at("cacheHits").u64(), 1u);
    EXPECT_EQ(sweep.at("liveRuns").u64(), 4u);
    // Provenance: the repeat is flagged, the first run is not.
    EXPECT_EQ(v.at("results").arr[0].at("cacheHit").str, "computed");
    EXPECT_EQ(v.at("results").arr[4].at("cacheHit").str, "memory");
}

// --------------------------------------------------------------------
// Interval timeline telemetry
// --------------------------------------------------------------------

namespace
{

/** Deterministic JSON body of one result (no host section). */
std::string
bodyJson(const SimResult &res)
{
    std::ostringstream ss;
    JsonWriter w(ss);
    res.toJson(w, /*include_host=*/false);
    w.finish();
    return ss.str();
}

} // namespace

TEST(Timeline, IntervalsTileTheRunExactly)
{
    // Run length deliberately not a multiple of the interval: the
    // trailing partial interval must still close, and the spans must
    // tile both retired instructions and total cycles with no gap.
    Program p = loopProgram(400);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.statsInterval = 1000;
    SimResult res = simulate(p, cfg);

    ASSERT_TRUE(res.timeline);
    const obs::TimelineData &tl = *res.timeline;
    EXPECT_EQ(tl.interval, 1000u);
    EXPECT_NE(res.retired % tl.interval, 0u);
    ASSERT_FALSE(tl.intervals.empty());
    ASSERT_FALSE(tl.counters.empty());

    InstSeqNum insts = 0;
    Cycle cycles = 0;
    for (const obs::TimelineInterval &iv : tl.intervals) {
        EXPECT_EQ(iv.startInst, insts);
        EXPECT_EQ(iv.startCycle, cycles);
        EXPECT_GT(iv.insts, 0u);
        EXPECT_LE(iv.insts, tl.interval);
        EXPECT_EQ(iv.deltas.size(), tl.counters.size());
        EXPECT_EQ(iv.phase, -1);    // phase tagging off
        insts += iv.insts;
        cycles += iv.cycles;
    }
    EXPECT_EQ(insts, res.retired);
    EXPECT_EQ(cycles, res.cycles);

    // Every full interval holds exactly `interval` instructions.
    for (std::size_t i = 0; i + 1 < tl.intervals.size(); ++i)
        EXPECT_EQ(tl.intervals[i].insts, tl.interval);

    // The retired-instruction counter's deltas account for every
    // instruction (it is one of the timing counters by construction).
    std::size_t retired_col = tl.counters.size();
    for (std::size_t i = 0; i < tl.counters.size(); ++i) {
        if (tl.counters[i] == "retire.retired")
            retired_col = i;
    }
    ASSERT_LT(retired_col, tl.counters.size());
    std::uint64_t retired_sum = 0;
    for (const obs::TimelineInterval &iv : tl.intervals)
        retired_sum += iv.deltas[retired_col];
    EXPECT_EQ(retired_sum, res.retired);
}

TEST(Timeline, ExactMultipleLeavesNoEmptyTrailingInterval)
{
    Program p = loopProgram(2000);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.statsInterval = 1000;
    cfg.maxInsts = 5000;    // exact multiple of the interval
    SimResult res = simulate(p, cfg);

    ASSERT_TRUE(res.timeline);
    ASSERT_EQ(res.retired, 5000u);
    ASSERT_EQ(res.timeline->intervals.size(), 5u);
    for (const obs::TimelineInterval &iv : res.timeline->intervals)
        EXPECT_EQ(iv.insts, 1000u);
    Cycle cycles = 0;
    for (const obs::TimelineInterval &iv : res.timeline->intervals)
        cycles += iv.cycles;
    EXPECT_EQ(cycles, res.cycles);
}

TEST(Timeline, PhaseLabelsInRangeAndFirstAppearanceOrdered)
{
    Program p = loopProgram(2000);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.statsInterval = 1000;
    cfg.statsPhases = 3;
    SimResult res = simulate(p, cfg);

    ASSERT_TRUE(res.timeline);
    const obs::TimelineData &tl = *res.timeline;
    ASSERT_FALSE(tl.intervals.empty());
    // Clusters are relabeled by first appearance: the opening
    // interval is always phase 0, and a label can only appear after
    // every smaller label has.
    EXPECT_EQ(tl.intervals.front().phase, 0);
    int seen_max = -1;
    for (const obs::TimelineInterval &iv : tl.intervals) {
        ASSERT_GE(iv.phase, 0);
        ASSERT_LT(iv.phase, 3);
        EXPECT_LE(iv.phase, seen_max + 1);
        seen_max = std::max(seen_max, iv.phase);
    }
}

TEST(Timeline, ByteIdenticalAcrossSchedulers)
{
    // mem_sched_stalls counts differently under scan and wakeup
    // (per-attempt vs per-event); it is registered as a non-timing
    // diagnostic precisely so this holds.
    Program p = loopProgram(1500);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.statsInterval = 500;
    cfg.statsPhases = 2;

    SimConfig wakeup = cfg;
    wakeup.core.scheduler = SchedulerKind::Wakeup;
    SimConfig scan = cfg;
    scan.core.scheduler = SchedulerKind::Scan;

    EXPECT_EQ(bodyJson(simulate(p, wakeup)),
              bodyJson(simulate(p, scan)));
}

TEST(Timeline, ByteIdenticalAcrossThreadCounts)
{
    // Through the SimRunner pool (cached copies share the immutable
    // TimelineData): any -j width serializes the same bytes.
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.name = "tl";
    cfg.maxInsts = 20'000;
    cfg.statsInterval = 4000;
    cfg.statsPhases = 2;

    auto doc = [&cfg](unsigned threads) {
        SimRunner pool(threads);
        std::vector<SimResult> results;
        for (const char *w : {"compress", "li"})
            results.push_back(pool.run(w, cfg));
        std::ostringstream ss;
        writeStatsJson(ss, "test_obs", results, nullptr,
                       /*include_host=*/false);
        return ss.str();
    };
    const std::string doc1 = doc(1);
    EXPECT_EQ(doc1, doc(8));
    // And the section actually made it into the document.
    JsonValue v = JsonValue::parse(doc1);
    const JsonValue &tl = v.at("results").arr[0].at("timeline");
    EXPECT_EQ(tl.at("schema").str, "tcfill-timeline-v1");
    EXPECT_EQ(tl.at("interval").u64(), 4000u);
    EXPECT_GT(tl.at("intervals").arr.size(), 0u);
}

TEST(Timeline, RecordReplayIdentical)
{
    const std::string path =
        ::testing::TempDir() + "tcfill_timeline_rr.tctrace";
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.name = "tl-rr";
    cfg.maxInsts = 20'000;
    cfg.statsInterval = 3000;
    cfg.statsPhases = 2;

    SimResult live = tracefile::recordTrace("compress", 1, cfg, path);
    SimResult replay = tracefile::replayTrace(path, cfg);
    ASSERT_TRUE(live.timeline);
    ASSERT_TRUE(replay.timeline);
    // The body differs only in provenance: mode, and sourceDigest
    // (record digests the workload source, replay digests the trace
    // file). Neutralize both and require byte identity (timeline
    // included).
    live.mode = replay.mode = "x";
    live.sourceDigest = replay.sourceDigest = "x";
    EXPECT_EQ(bodyJson(live), bodyJson(replay));
    std::remove(path.c_str());
}

TEST(Timeline, TelemetryNeverPerturbsTiming)
{
    // The acceptance bar for the whole subsystem: timeline
    // collection, phase tagging and the host profiler are all
    // observational — the simulated machine is bit-identical.
    Program p = loopProgram(800);
    SimConfig plain_cfg = SimConfig::withOpts(FillOptimizations::all());
    SimResult base = simulate(p, plain_cfg);

    SimConfig tl_cfg = plain_cfg;
    tl_cfg.statsInterval = 700;
    tl_cfg.statsPhases = 2;
    obs::HostProfiler prof;
    Processor proc(p, tl_cfg);
    proc.setHostProfiler(&prof);
    SimResult r = proc.run();

    EXPECT_EQ(r.retired, base.retired);
    EXPECT_EQ(r.cycles, base.cycles);
    EXPECT_EQ(r.tcHits, base.tcHits);
    EXPECT_EQ(r.mispredicts, base.mispredicts);
    EXPECT_EQ(r.dynMoves, base.dynMoves);
    EXPECT_EQ(r.dynReassoc, base.dynReassoc);
    // The profiler actually measured the stage ticks it wrapped.
    bool saw_retire = false;
    for (const obs::HostProfiler::Row &row : prof.rows())
        saw_retire |= std::string_view(row.name) == "retire";
    EXPECT_TRUE(saw_retire);
}

// --------------------------------------------------------------------
// Chrome trace-event export
// --------------------------------------------------------------------

TEST(TraceEvents, WriterEmitsStrictDocument)
{
    std::ostringstream ss;
    {
        obs::TraceEventWriter w(ss);
        w.processName(obs::kTracePidSim, "sim");
        w.threadName(obs::kTracePidSim, 1, "fetch");
        w.complete(obs::kTracePidSim, 1, "0x100", 10.0, 5.0,
                   "\"seq\": 1");
        w.instant(obs::kTracePidSim, 1, "squash", 12.0);
        w.counter(obs::kTracePidSim, "in-flight", 13.0, "insts", 7.0);
        EXPECT_EQ(w.events(), 5u);
        w.close();
        w.close();    // idempotent
    }
    JsonValue v = JsonValue::parse(ss.str());
    const JsonValue &evs = v.at("traceEvents");
    ASSERT_TRUE(evs.isArray());
    ASSERT_EQ(evs.arr.size(), 5u);
    for (const JsonValue &e : evs.arr) {
        EXPECT_FALSE(e.at("ph").str.empty());
        EXPECT_GT(e.at("pid").u64(), 0u);
    }
    EXPECT_EQ(evs.arr[2].at("ph").str, "X");
    EXPECT_EQ(evs.arr[2].at("ts").num(), 10.0);
    EXPECT_EQ(evs.arr[2].at("dur").num(), 5.0);
    EXPECT_EQ(evs.arr[2].at("args").at("seq").u64(), 1u);
    EXPECT_EQ(evs.arr[3].at("s").str, "t");
    EXPECT_EQ(evs.arr[4].at("args").at("insts").num(), 7.0);
}

#if TCFILL_PIPE_TRACE_ENABLED

TEST(TraceEvents, TracerRendersPipelineAndPreservesTiming)
{
    Program p = loopProgram(500);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    SimResult base = simulate(p, cfg);

    std::ostringstream ss;
    obs::TraceEventWriter w(ss);
    obs::TraceEventTracer tracer(w);
    Processor proc(p, cfg);
    proc.setTracer(&tracer);
    SimResult r = proc.run();
    tracer.finish();
    w.close();

    EXPECT_EQ(r.retired, base.retired);
    EXPECT_EQ(r.cycles, base.cycles);

    JsonValue v = JsonValue::parse(ss.str());
    const JsonValue &evs = v.at("traceEvents");
    ASSERT_TRUE(evs.isArray());
    std::size_t spans = 0, counters = 0, meta = 0;
    double max_end = 0.0;
    for (const JsonValue &e : evs.arr) {
        const std::string &ph = e.at("ph").str;
        if (ph == "X") {
            ++spans;
            EXPECT_GE(e.at("dur").num(), 0.0);
            max_end = std::max(max_end,
                               e.at("ts").num() + e.at("dur").num());
        } else if (ph == "C") {
            ++counters;
        } else if (ph == "M") {
            ++meta;
        }
    }
    // Every retired instruction produces at least one segment span.
    EXPECT_GE(spans, static_cast<std::size_t>(base.retired));
    EXPECT_GT(counters, 0u);
    EXPECT_GE(meta, 9u);    // 2 process names + 7 thread names
    // Sim timebase: 1 cycle = 1us, so no span outlives the run.
    EXPECT_LE(max_end, static_cast<double>(base.cycles));
}

#endif // TCFILL_PIPE_TRACE_ENABLED

TEST(StatsJson, HostSectionsAppearOnRequest)
{
    SimRunner pool(2);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.name = "all";
    cfg.maxInsts = 20'000;
    std::vector<SimResult> results{pool.run("compress", cfg)};
    obs::SweepProgress snap = pool.progress();

    std::ostringstream ss;
    writeStatsJson(ss, "test_obs", results, &snap,
                   /*include_host=*/true);
    JsonValue v = JsonValue::parse(ss.str());
    const JsonValue &host = v.at("host");
    EXPECT_EQ(host.at("workers").u64(), 2u);
    EXPECT_GT(host.at("wallSeconds").num(), 0.0);
    EXPECT_GT(v.at("results").arr[0].at("host")
                  .at("hostSeconds").num(), 0.0);
}

} // namespace
} // namespace tcfill
