/** @file Unit tests for the ProgramBuilder assembler. */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "isa/instruction.hh"

namespace tcfill
{
namespace
{

TEST(Builder, EmitsAtTextBase)
{
    ProgramBuilder pb("t");
    pb.add(1, 2, 3);
    pb.halt();
    Program p = pb.finish();
    EXPECT_EQ(p.textBase, kTextBase);
    EXPECT_EQ(p.entry, kTextBase);
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(decode(p.text[0]).op, Op::ADD);
    EXPECT_EQ(decode(p.text[1]).op, Op::HALT);
}

TEST(Builder, HereTracksPosition)
{
    ProgramBuilder pb("t");
    EXPECT_EQ(pb.here(), kTextBase);
    pb.nop();
    pb.nop();
    EXPECT_EQ(pb.here(), kTextBase + 8);
}

TEST(Builder, BackwardBranchOffset)
{
    ProgramBuilder pb("t");
    Label top = pb.newLabel();
    pb.bind(top);
    pb.addi(1, 1, -1);      // index 0
    pb.bgtz(1, top);        // index 1 -> offset -2
    pb.halt();
    Program p = pb.finish();
    Instruction b = decode(p.text[1]);
    EXPECT_EQ(b.op, Op::BGTZ);
    EXPECT_EQ(b.imm, -2);
}

TEST(Builder, ForwardBranchOffset)
{
    ProgramBuilder pb("t");
    Label skip = pb.newLabel();
    pb.beq(1, 2, skip);     // index 0
    pb.nop();               // index 1
    pb.nop();               // index 2
    pb.bind(skip);
    pb.halt();              // index 3 -> offset +2
    Program p = pb.finish();
    EXPECT_EQ(decode(p.text[0]).imm, 2);
}

TEST(Builder, JumpTargetsAbsoluteWordAddress)
{
    ProgramBuilder pb("t");
    Label fn = pb.newLabel();
    pb.j(fn);
    pb.nop();
    pb.bind(fn);
    pb.halt();
    Program p = pb.finish();
    Instruction j = decode(p.text[0]);
    EXPECT_EQ(j.op, Op::J);
    EXPECT_EQ(static_cast<Addr>(j.imm) * 4, kTextBase + 8);
}

TEST(Builder, LiExpandsBySize)
{
    {
        ProgramBuilder pb("t");
        pb.li(3, 42);
        EXPECT_EQ(pb.size(), 1u);   // single addi
    }
    {
        ProgramBuilder pb("t");
        pb.li(3, 0x12340000);
        EXPECT_EQ(pb.size(), 1u);   // lui only (low half zero)
    }
    {
        ProgramBuilder pb("t");
        pb.li(3, 0x12345678);
        EXPECT_EQ(pb.size(), 2u);   // lui + ori
    }
}

TEST(Builder, MovePseudoIsAddiZero)
{
    ProgramBuilder pb("t");
    pb.move(4, 9);
    Program p = pb.finish();
    Instruction in = decode(p.text[0]);
    EXPECT_EQ(in.op, Op::ADDI);
    EXPECT_EQ(in.imm, 0);
    ASSERT_TRUE(moveSource(in).has_value());
    EXPECT_EQ(*moveSource(in), 9);
}

TEST(Builder, DataSegmentsAlignedAndOrdered)
{
    ProgramBuilder pb("t");
    Addr a = pb.allocData(3, 1);
    Addr b = pb.allocData(8, 8);
    Addr c = pb.dataWords({1, 2, 3});
    EXPECT_EQ(a, kDataBase);
    EXPECT_EQ(b % 8, 0u);
    EXPECT_GT(b, a);
    EXPECT_GT(c, b);
    pb.halt();
    Program p = pb.finish();
    ASSERT_EQ(p.data.size(), 3u);
    // dataWords little-endian layout
    EXPECT_EQ(p.data[2].bytes[0], 1);
    EXPECT_EQ(p.data[2].bytes[4], 2);
}

TEST(Builder, PokeWordPatches)
{
    ProgramBuilder pb("t");
    Addr a = pb.dataWords({0, 0});
    pb.pokeWord(a + 4, 0x11223344);
    pb.halt();
    Program p = pb.finish();
    EXPECT_EQ(p.data[0].bytes[4], 0x44);
    EXPECT_EQ(p.data[0].bytes[7], 0x11);
}

TEST(Builder, ContainsPc)
{
    ProgramBuilder pb("t");
    pb.nop();
    pb.halt();
    Program p = pb.finish();
    EXPECT_TRUE(p.containsPc(kTextBase));
    EXPECT_TRUE(p.containsPc(kTextBase + 4));
    EXPECT_FALSE(p.containsPc(kTextBase + 8));
    EXPECT_FALSE(p.containsPc(kTextBase + 2));   // misaligned
    EXPECT_FALSE(p.containsPc(kTextBase - 4));
}

TEST(BuilderDeath, UnboundLabelIsFatal)
{
    ProgramBuilder pb("t");
    Label l = pb.newLabel();
    pb.beq(1, 2, l);
    pb.halt();
    EXPECT_EXIT(pb.finish(), ::testing::ExitedWithCode(1),
                "unbound label");
}

TEST(BuilderDeath, DoubleBindIsFatal)
{
    ProgramBuilder pb("t");
    Label l = pb.newLabel();
    pb.bind(l);
    EXPECT_EXIT(pb.bind(l), ::testing::ExitedWithCode(1),
                "bound twice");
}

TEST(BuilderDeath, DefaultLabelIsFatal)
{
    ProgramBuilder pb("t");
    Label l;
    EXPECT_EXIT(pb.beq(1, 2, l), ::testing::ExitedWithCode(1),
                "default-constructed");
}

TEST(BuilderDeath, AddiImmediateRangeChecked)
{
    ProgramBuilder pb("t");
    EXPECT_EXIT(pb.addi(1, 2, 40000), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(BuilderDeath, PokeOutsideSegmentsIsFatal)
{
    ProgramBuilder pb("t");
    pb.dataWords({1});
    EXPECT_EXIT(pb.pokeWord(kDataBase + 64, 0),
                ::testing::ExitedWithCode(1), "outside any data");
}

} // namespace
} // namespace tcfill
