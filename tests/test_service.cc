/**
 * @file
 * Simulation-service tests: the digest primitives every
 * content-addressed identity derives from (pinned to published test
 * vectors so an accidental algorithm change orphans no store), the
 * tcfill-svc-v1 frame codec, the persistent ResultStore (round trips,
 * reopen, LRU eviction, compaction, corruption recovery), the
 * ResultSource composition seam, and the daemon end to end: request
 * coalescing, provenance accounting, and byte-identical records
 * across every provenance path and shard count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/digest.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "service/source.hh"
#include "service/store.hh"
#include "sim/runner.hh"

using namespace tcfill;
using namespace tcfill::service;

namespace
{

/** Fresh scratch directory per test (TempDir is per-test-binary). */
std::string
scratchDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "tcfill_svc_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

SimConfig
tinyConfig(const std::string &name = "tiny")
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.name = name;
    cfg.maxInsts = 2'000;
    return cfg;
}

// ---- digest vectors -----------------------------------------------------

// The store, the trace format and the wire frames all checksum with
// this one CRC-32; the published check value pins the polynomial.
TEST(Digest, Crc32CheckVector)
{
    const char kCheck[] = "123456789";
    EXPECT_EQ(digest::crc32(kCheck, 9), 0xcbf43926u);
    EXPECT_EQ(digest::crc32("", 0), 0u);
}

TEST(Digest, Crc32Seeding)
{
    // Chained CRC over two chunks equals the one-shot CRC.
    const std::string a = "hello, ", b = "world";
    std::uint32_t chained =
        digest::crc32(b.data(), b.size(),
                      digest::crc32(a.data(), a.size()));
    const std::string ab = a + b;
    EXPECT_EQ(chained, digest::crc32(ab.data(), ab.size()));
}

TEST(Digest, Fnv64Vectors)
{
    EXPECT_EQ(digest::fnv64(""), digest::kFnv64Offset);
    EXPECT_EQ(digest::fnv64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(digest::fnv64("foobar"), 0x85944171f73967e8ull);
}

TEST(Digest, Fnv64Incremental)
{
    digest::Fnv64 h;
    h.update("foo").update("bar");
    EXPECT_EQ(h.value(), digest::fnv64("foobar"));
}

TEST(Digest, Hex64)
{
    EXPECT_EQ(digest::hex64(0), "0000000000000000");
    EXPECT_EQ(digest::hex64(0xdeadbeefcafef00dull),
              "deadbeefcafef00d");
}

// ---- simulation-point keys ----------------------------------------------

TEST(PointKey, NameIsCosmetic)
{
    SimConfig a = tinyConfig("one");
    SimConfig b = tinyConfig("two");
    EXPECT_EQ(configCacheKey(a), configCacheKey(b));
    EXPECT_EQ(simPointKey("compress", 1, a),
              simPointKey("compress", 1, b));
}

TEST(PointKey, KnobsAreNot)
{
    const SimConfig base = tinyConfig();
    SimConfig t = base;
    t.maxInsts = 3'000;
    EXPECT_NE(configCacheKey(base), configCacheKey(t));
    t = base;
    t.tcache.entries /= 2;
    EXPECT_NE(configCacheKey(base), configCacheKey(t));
    t = base;
    t.fill.opts.markMoves = !t.fill.opts.markMoves;
    EXPECT_NE(configCacheKey(base), configCacheKey(t));
    EXPECT_NE(simPointKey("compress", 1, base),
              simPointKey("compress", 2, base));
    EXPECT_NE(simPointKey("compress", 1, base),
              simPointKey("li", 1, base));
}

// ---- frame codec --------------------------------------------------------

TEST(Frame, RoundTrip)
{
    const std::string payload = "{\"type\": \"ping\"}";
    const std::string frame = encodeFrame(payload);
    EXPECT_EQ(frame.size(), payload.size() + kFrameOverhead);

    std::string out;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(frame, out, consumed), FrameStatus::Ok);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(consumed, frame.size());
}

TEST(Frame, EmptyPayload)
{
    const std::string frame = encodeFrame("");
    std::string out;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(frame, out, consumed), FrameStatus::Ok);
    EXPECT_EQ(out, "");
    EXPECT_EQ(consumed, kFrameOverhead);
}

TEST(Frame, BackToBackFrames)
{
    const std::string two = encodeFrame("first") + encodeFrame("second");
    std::string out;
    std::size_t consumed = 0;
    ASSERT_EQ(decodeFrame(two, out, consumed), FrameStatus::Ok);
    EXPECT_EQ(out, "first");
    ASSERT_EQ(decodeFrame(std::string_view(two).substr(consumed), out,
                          consumed),
              FrameStatus::Ok);
    EXPECT_EQ(out, "second");
}

TEST(Frame, EveryTruncationNeedsMore)
{
    const std::string frame = encodeFrame("truncate me");
    for (std::size_t n = 0; n < frame.size(); ++n) {
        std::string out;
        std::size_t consumed = 0;
        EXPECT_EQ(decodeFrame(std::string_view(frame).substr(0, n),
                              out, consumed),
                  FrameStatus::NeedMore)
            << "prefix length " << n;
    }
}

TEST(Frame, BadMagic)
{
    std::string frame = encodeFrame("x");
    frame[0] ^= 0xff;
    std::string out;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(frame, out, consumed), FrameStatus::BadMagic);
}

TEST(Frame, PayloadCorruptionIsBadCrc)
{
    std::string frame = encodeFrame("payload bytes");
    frame[8] ^= 0x01; // first payload byte
    std::string out;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(frame, out, consumed), FrameStatus::BadCrc);
}

TEST(Frame, ForgedLengthIsTooLarge)
{
    std::string frame = encodeFrame("x");
    // Overwrite the length word with kMaxFramePayload + 1 (LE).
    const std::uint32_t huge = kMaxFramePayload + 1;
    for (int i = 0; i < 4; ++i)
        frame[4 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
    std::string out;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(frame, out, consumed), FrameStatus::TooLarge);
}

// ---- persistent result store --------------------------------------------

TEST(Store, PutGetRoundTrip)
{
    const std::string dir = scratchDir("roundtrip");
    ResultStore store(dir);
    std::string err;
    ASSERT_TRUE(store.load(err)) << err;

    EXPECT_TRUE(store.put("key-a", "value-a"));
    EXPECT_TRUE(store.put("key-b", "value-b"));
    std::string v;
    EXPECT_TRUE(store.get("key-a", v));
    EXPECT_EQ(v, "value-a");
    EXPECT_TRUE(store.get("key-b", v));
    EXPECT_EQ(v, "value-b");
    EXPECT_FALSE(store.get("key-c", v));
    EXPECT_EQ(store.size(), 2u);

    // Overwrite: last put wins.
    EXPECT_TRUE(store.put("key-a", "value-a2"));
    EXPECT_TRUE(store.get("key-a", v));
    EXPECT_EQ(v, "value-a2");
    EXPECT_EQ(store.size(), 2u);

    StoreStats s = store.stats();
    EXPECT_EQ(s.puts, 3u);
    EXPECT_EQ(s.hits, 3u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.liveRecords, 2u);
}

TEST(Store, PersistsAcrossReopen)
{
    const std::string dir = scratchDir("reopen");
    std::string err;
    {
        ResultStore store(dir);
        ASSERT_TRUE(store.load(err)) << err;
        EXPECT_TRUE(store.put("k1", "v1"));
        EXPECT_TRUE(store.put("k2", "v2"));
        EXPECT_TRUE(store.erase("k1"));
    }
    ResultStore store(dir);
    ASSERT_TRUE(store.load(err)) << err;
    EXPECT_EQ(store.size(), 1u);
    std::string v;
    EXPECT_FALSE(store.get("k1", v));
    EXPECT_TRUE(store.get("k2", v));
    EXPECT_EQ(v, "v2");
}

TEST(Store, LruEvictionUnderCap)
{
    const std::string dir = scratchDir("evict");
    // Each entry is 2 + 6 = 8 live bytes; cap at two entries' worth.
    ResultStore store(dir, 16);
    std::string err;
    ASSERT_TRUE(store.load(err)) << err;

    EXPECT_TRUE(store.put("k1", "aaaaaa"));
    EXPECT_TRUE(store.put("k2", "bbbbbb"));
    std::string v;
    EXPECT_TRUE(store.get("k1", v)); // k1 now most recent
    EXPECT_TRUE(store.put("k3", "cccccc"));

    EXPECT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.get("k1", v));
    EXPECT_FALSE(store.get("k2", v)) << "LRU entry should be evicted";
    EXPECT_TRUE(store.get("k3", v));
    EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(Store, TouchPersistsLruOrderAcrossReopen)
{
    const std::string dir = scratchDir("touch");
    std::string err;
    {
        ResultStore store(dir, 16);
        ASSERT_TRUE(store.load(err)) << err;
        EXPECT_TRUE(store.put("k1", "aaaaaa"));
        EXPECT_TRUE(store.put("k2", "bbbbbb"));
        std::string v;
        EXPECT_TRUE(store.get("k1", v)); // TOUCH k1 in the log
    }
    ResultStore store(dir, 16);
    ASSERT_TRUE(store.load(err)) << err;
    // Replayed order must remember the touch: k2 is the LRU victim.
    EXPECT_TRUE(store.put("k3", "cccccc"));
    std::string v;
    EXPECT_TRUE(store.get("k1", v));
    EXPECT_FALSE(store.get("k2", v));
}

TEST(Store, CompactPreservesContentAndShrinksLog)
{
    const std::string dir = scratchDir("compact");
    std::string err;
    {
        ResultStore store(dir);
        ASSERT_TRUE(store.load(err)) << err;
        // Churn: overwrites, touches and an erase leave dead log bytes.
        for (int round = 0; round < 4; ++round)
            for (int k = 0; k < 4; ++k)
                EXPECT_TRUE(store.put("key" + std::to_string(k),
                                      "round" + std::to_string(round)));
        std::string v;
        EXPECT_TRUE(store.get("key0", v));
        EXPECT_TRUE(store.erase("key3"));

        const std::uint64_t before = store.stats().logBytes;
        ASSERT_TRUE(store.compact(err)) << err;
        EXPECT_LT(store.stats().logBytes, before);
        EXPECT_EQ(store.size(), 3u);
        for (int k = 0; k < 3; ++k) {
            EXPECT_TRUE(store.get("key" + std::to_string(k), v));
            EXPECT_EQ(v, "round3");
        }
        EXPECT_FALSE(store.get("key3", v));
    }

    // And the compacted log replays (first holder must release its
    // lock before a second opener may load).
    ResultStore reopened(dir);
    ASSERT_TRUE(reopened.load(err)) << err;
    EXPECT_EQ(reopened.size(), 3u);
}

// Regression: eviction used to pass lru_.back() by reference into
// dropLocked(), which erased that exact list node and then built the
// ERASE record from the dangling key. A garbage ERASE record reads as
// a torn tail on reload, silently truncating every later record.
TEST(Store, EvictionLogsWellFormedEraseRecords)
{
    const std::string dir = scratchDir("evictlog");
    std::string err;
    {
        // 8 live bytes per small entry; cap so one put evicts two.
        ResultStore store(dir, 30);
        ASSERT_TRUE(store.load(err)) << err;
        EXPECT_TRUE(store.put("k1", "aaaaaa"));
        EXPECT_TRUE(store.put("k2", "bbbbbb"));
        EXPECT_TRUE(store.put("k3", "cccccc"));
        EXPECT_TRUE(store.put("k4", std::string(18, 'd')));
        EXPECT_EQ(store.stats().evictions, 2u);
        // Records appended after the evictions must survive reload.
        EXPECT_TRUE(store.put("k5", "eeeeee"));
        EXPECT_EQ(store.stats().evictions, 3u);
    }
    ResultStore store(dir, 30);
    ASSERT_TRUE(store.load(err)) << err;
    EXPECT_EQ(store.stats().recoveredDrops, 0u)
        << "eviction ERASE records must replay cleanly";
    EXPECT_EQ(store.size(), 2u);
    std::string v;
    EXPECT_FALSE(store.get("k1", v));
    EXPECT_FALSE(store.get("k2", v));
    EXPECT_FALSE(store.get("k3", v));
    EXPECT_TRUE(store.get("k4", v));
    EXPECT_EQ(v, std::string(18, 'd'));
    EXPECT_TRUE(store.get("k5", v));
    EXPECT_EQ(v, "eeeeee");
}

TEST(Store, SecondOpenerIsLockedOut)
{
    const std::string dir = scratchDir("lock");
    std::string err;
    ResultStore first(dir);
    ASSERT_TRUE(first.load(err)) << err;
    // A second daemon or an offline --compact against a live store
    // would rename a new inode under the holder's fd; refuse instead.
    ResultStore second(dir);
    EXPECT_FALSE(second.load(err));
    EXPECT_NE(err.find("locked"), std::string::npos) << err;
}

TEST(Store, TornTailIsTruncatedOnLoad)
{
    const std::string dir = scratchDir("torn");
    std::string err;
    std::string path;
    {
        ResultStore store(dir);
        ASSERT_TRUE(store.load(err)) << err;
        EXPECT_TRUE(store.put("good", "value"));
        path = store.path();
    }
    // Simulate a crash mid-append: half a record at the tail.
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const char torn[] = {0x01, 0x04, 'p', 'a'};
        ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), f), sizeof(torn));
        std::fclose(f);
    }
    ResultStore store(dir);
    ASSERT_TRUE(store.load(err)) << err;
    EXPECT_EQ(store.size(), 1u);
    EXPECT_GE(store.stats().recoveredDrops, 1u);
    std::string v;
    EXPECT_TRUE(store.get("good", v));
    EXPECT_EQ(v, "value");
    // The truncated log accepts appends again.
    EXPECT_TRUE(store.put("after", "recovery"));
    EXPECT_TRUE(store.get("after", v));
}

TEST(Store, OnDiskBitFlipDegradesToMiss)
{
    const std::string dir = scratchDir("bitflip");
    std::string err;
    ResultStore store(dir);
    ASSERT_TRUE(store.load(err)) << err;
    const std::string value(64, 'x');
    EXPECT_TRUE(store.put("fragile", value));
    EXPECT_TRUE(store.put("sturdy", "ok"));

    // Flip one byte inside "fragile"'s stored value, behind the
    // store's back. The value is 64 'x' bytes; find and damage one.
    {
        std::FILE *f = std::fopen(store.path().c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::string log;
        int c;
        while ((c = std::fgetc(f)) != EOF)
            log.push_back(static_cast<char>(c));
        std::size_t at = log.find(std::string(8, 'x'));
        ASSERT_NE(at, std::string::npos);
        ASSERT_EQ(std::fseek(f, static_cast<long>(at), SEEK_SET), 0);
        ASSERT_EQ(std::fputc('y', f), 'y');
        std::fclose(f);
    }

    std::string v;
    EXPECT_FALSE(store.get("fragile", v))
        << "corrupt record must degrade to a miss, not a wrong value";
    EXPECT_GE(store.stats().corruptDrops, 1u);
    EXPECT_TRUE(store.get("sturdy", v));
    EXPECT_EQ(v, "ok");
    // The key is invalidated, not wedged: a fresh put repairs it.
    EXPECT_TRUE(store.put("fragile", value));
    EXPECT_TRUE(store.get("fragile", v));
    EXPECT_EQ(v, value);
}

// ---- result sources -----------------------------------------------------

TEST(Source, StoreDecoratorRoundTrips)
{
    const std::string dir = scratchDir("source");
    ResultStore store(dir);
    std::string err;
    ASSERT_TRUE(store.load(err)) << err;

    SimRunner runner(1);
    RunnerSource leaf(runner);
    StoreSource src(store, leaf);
    const SimConfig cfg = tinyConfig();

    SimResult first = src.fetch("compress", 1, cfg);
    EXPECT_EQ(first.cacheHit, "computed");
    EXPECT_EQ(store.size(), 1u);

    SimResult second = src.fetch("compress", 1, cfg);
    EXPECT_EQ(second.cacheHit, "store");
    // Byte-identical physics regardless of provenance.
    EXPECT_EQ(normalizedRecordText(first),
              normalizedRecordText(second));

    // A fresh store + runner stack (cold memory cache) serves the
    // persisted record instead of re-simulating.
    SimRunner runner2(1);
    RunnerSource leaf2(runner2);
    StoreSource src2(store, leaf2);
    SimResult third = src2.fetch("compress", 1, cfg);
    EXPECT_EQ(third.cacheHit, "store");
    EXPECT_EQ(normalizedRecordText(first),
              normalizedRecordText(third));
}

TEST(Source, NormalizedRecordStripsProvenance)
{
    SimRunner runner(1);
    RunnerSource leaf(runner);
    SimResult r = leaf.fetch("compress", 1, tinyConfig());
    SimResult again = leaf.fetch("compress", 1, tinyConfig());
    EXPECT_EQ(r.cacheHit, "computed");
    EXPECT_EQ(again.cacheHit, "memory");
    EXPECT_EQ(normalizedRecordText(r), normalizedRecordText(again));
}

// ---- daemon end to end --------------------------------------------------

/** An in-process daemon plus its serve() thread. */
class DaemonHarness
{
  public:
    DaemonHarness(const std::string &tag, unsigned shards,
                  bool with_store = true)
    {
        dir_ = scratchDir(tag);
        DaemonOptions opts;
        opts.socketPath = dir_ + "/sock";
        if (with_store)
            opts.storeDir = dir_ + "/store";
        opts.shards = shards;
        opts.shardThreads = 1;
        daemon_ = std::make_unique<Daemon>(opts);
        std::string err;
        started_ = daemon_->start(err);
        EXPECT_TRUE(started_) << err;
        if (started_)
            server_ = std::thread([this] { daemon_->serve(); });
    }

    ~DaemonHarness()
    {
        if (started_) {
            daemon_->requestShutdown();
            server_.join();
        }
    }

    const std::string &socketPath() const
    {
        return daemon_->options().socketPath;
    }

    bool started() const { return started_; }

  private:
    std::string dir_;
    std::unique_ptr<Daemon> daemon_;
    std::thread server_;
    bool started_ = false;
};

ServiceClient::Point
point(const std::string &workload, const SimConfig &cfg)
{
    ServiceClient::Point p;
    p.workload = workload;
    p.scale = 1;
    p.config = cfg;
    return p;
}

TEST(Daemon, PingAndSweepProvenance)
{
    DaemonHarness harness("e2e", 1);
    ASSERT_TRUE(harness.started());

    ServiceClient client;
    std::string err;
    ASSERT_TRUE(client.connect(harness.socketPath(), err)) << err;
    EXPECT_TRUE(client.ping(err)) << err;

    std::vector<ServiceClient::Point> pts{
        point("compress", tinyConfig()),
        point("li", tinyConfig()),
    };
    std::vector<SimResult> cold;
    ServiceClient::SweepSummary summary;
    ASSERT_TRUE(client.sweep(pts, cold, summary, err)) << err;
    ASSERT_EQ(cold.size(), 2u);
    EXPECT_EQ(summary.points, 2u);
    EXPECT_EQ(summary.computed, 2u);
    EXPECT_EQ(cold[0].cacheHit, "computed");
    EXPECT_EQ(cold[0].workload, "compress");
    EXPECT_EQ(cold[1].workload, "li");
    EXPECT_EQ(cold[0].config, "tiny");

    // Same sweep again: everything from the persistent store.
    std::vector<SimResult> warm;
    ASSERT_TRUE(client.sweep(pts, warm, summary, err)) << err;
    EXPECT_EQ(summary.storeHits, 2u);
    EXPECT_EQ(summary.computed, 0u);
    ASSERT_EQ(warm.size(), 2u);
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_EQ(warm[i].cacheHit, "store");
        EXPECT_EQ(normalizedRecordText(cold[i]),
                  normalizedRecordText(warm[i]));
    }
}

TEST(Daemon, DuplicatePointsCoalesce)
{
    DaemonHarness harness("coalesce", 1, /*with_store=*/false);
    ASSERT_TRUE(harness.started());

    ServiceClient client;
    std::string err;
    ASSERT_TRUE(client.connect(harness.socketPath(), err)) << err;

    // Two identical points in one batch: one simulation, the
    // duplicate attaches to the in-flight future as a memory hit.
    std::vector<ServiceClient::Point> pts{
        point("compress", tinyConfig("dup-a")),
        point("compress", tinyConfig("dup-b")),
    };
    std::vector<SimResult> out;
    ServiceClient::SweepSummary summary;
    ASSERT_TRUE(client.sweep(pts, out, summary, err)) << err;
    EXPECT_EQ(summary.points, 2u);
    EXPECT_EQ(summary.computed, 1u);
    EXPECT_EQ(summary.memoryHits, 1u);
    ASSERT_EQ(out.size(), 2u);
    // Each result is relabeled with its requested config name.
    EXPECT_EQ(out[0].config, "dup-a");
    EXPECT_EQ(out[1].config, "dup-b");
    SimResult b = out[1];
    b.config = out[0].config;
    EXPECT_EQ(normalizedRecordText(out[0]), normalizedRecordText(b));
}

TEST(Daemon, RecordsIdenticalAcrossShardCounts)
{
    std::vector<ServiceClient::Point> pts;
    for (const char *w : {"compress", "li"}) {
        SimConfig all = tinyConfig("all");
        pts.push_back(point(w, all));
        SimConfig none = SimConfig::withOpts(FillOptimizations::none());
        none.name = "none";
        none.maxInsts = 2'000;
        pts.push_back(point(w, none));
    }

    auto runAt = [&pts](const std::string &tag, unsigned shards) {
        DaemonHarness harness(tag, shards);
        EXPECT_TRUE(harness.started());
        ServiceClient client;
        std::string err;
        EXPECT_TRUE(client.connect(harness.socketPath(), err)) << err;
        std::vector<SimResult> out;
        ServiceClient::SweepSummary summary;
        EXPECT_TRUE(client.sweep(pts, out, summary, err)) << err;
        EXPECT_EQ(summary.computed, pts.size());
        std::vector<std::string> records;
        for (const SimResult &r : out)
            records.push_back(normalizedRecordText(r));
        return records;
    };

    const auto one = runAt("shards1", 1);
    const auto four = runAt("shards4", 4);
    ASSERT_EQ(one.size(), pts.size());
    EXPECT_EQ(one, four);
}

TEST(Daemon, RejectsUnknownWorkloadWithoutKillingTheSweep)
{
    DaemonHarness harness("badwl", 1, /*with_store=*/false);
    ASSERT_TRUE(harness.started());

    ServiceClient client;
    std::string err;
    ASSERT_TRUE(client.connect(harness.socketPath(), err)) << err;

    std::vector<ServiceClient::Point> pts{
        point("no-such-workload", tinyConfig()),
    };
    std::vector<SimResult> out;
    ServiceClient::SweepSummary summary;
    EXPECT_FALSE(client.sweep(pts, out, summary, err));
    EXPECT_NE(err.find("workload"), std::string::npos) << err;

    // The connection (and daemon) survive a rejected sweep.
    std::vector<ServiceClient::Point> good{
        point("compress", tinyConfig()),
    };
    ASSERT_TRUE(client.sweep(good, out, summary, err)) << err;
    EXPECT_EQ(summary.computed, 1u);
}

} // namespace
