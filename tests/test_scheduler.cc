/**
 * @file
 * Scheduler equivalence tests (DESIGN.md §13): the event-driven
 * wakeup/select scheduler must be cycle-for-cycle and
 * counter-for-counter identical to the per-cycle scan oracle — across
 * every fill-optimization combination, under mispredict storms, and
 * under a randomized (deterministically seeded) dispatch/squash storm
 * driven at the core directly. mem_sched_stalls is the one counter
 * deliberately excluded: the event-driven core evaluates the memory
 * scheduler only on wake events rather than every cycle, so the two
 * designs *attempt* blocked selects a different number of times while
 * picking identical instructions on identical cycles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mem/cache.hh"
#include "sim/processor.hh"
#include "uarch/exec_core.hh"
#include "workloads/suite.hh"

namespace tcfill
{
namespace
{

/** One full pipeline run plus the core-level counters. */
struct RunOut
{
    SimResult r;
    std::uint64_t selected;
    std::uint64_t bypassDelayed;
    std::uint64_t loadForwards;
};

RunOut
runOne(const std::string &workload, SimConfig cfg, SchedulerKind kind)
{
    Program prog = workloads::build(workload, 1);
    cfg.core.scheduler = kind;
    Processor p(prog, cfg);
    RunOut out;
    out.r = p.run();
    const ExecCore &core = p.issueStage().core();
    out.selected = core.selectedCount();
    out.bypassDelayed = core.bypassDelayedCount();
    out.loadForwards = core.loadForwardsCount();
    return out;
}

/** Every deterministic field of two runs must match exactly. */
void
expectIdentical(const RunOut &scan, const RunOut &wake,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(scan.r.retired, wake.r.retired);
    EXPECT_EQ(scan.r.cycles, wake.r.cycles);
    EXPECT_EQ(scan.r.tcHits, wake.r.tcHits);
    EXPECT_EQ(scan.r.tcMisses, wake.r.tcMisses);
    EXPECT_EQ(scan.r.mispredicts, wake.r.mispredicts);
    EXPECT_EQ(scan.r.inactiveRescues, wake.r.inactiveRescues);
    EXPECT_EQ(scan.r.mispredictStallCycles,
              wake.r.mispredictStallCycles);
    EXPECT_EQ(scan.r.segmentsBuilt, wake.r.segmentsBuilt);
    EXPECT_EQ(scan.r.avgSegmentLength, wake.r.avgSegmentLength);
    EXPECT_EQ(scan.r.bpredAccuracy, wake.r.bpredAccuracy);
    EXPECT_EQ(scan.r.dynMoves, wake.r.dynMoves);
    EXPECT_EQ(scan.r.dynReassoc, wake.r.dynReassoc);
    EXPECT_EQ(scan.r.dynScaled, wake.r.dynScaled);
    EXPECT_EQ(scan.r.dynMoveIdioms, wake.r.dynMoveIdioms);
    EXPECT_EQ(scan.r.dynElided, wake.r.dynElided);
    EXPECT_EQ(scan.r.bypassDelayed, wake.r.bypassDelayed);
    EXPECT_EQ(scan.selected, wake.selected);
    EXPECT_EQ(scan.bypassDelayed, wake.bypassDelayed);
    EXPECT_EQ(scan.loadForwards, wake.loadForwards);
}

/**
 * All 32 combinations of the five fill optimizations, three
 * workloads: the schedulers must agree on every counter no matter
 * which dynamic transforms reshape the instruction stream.
 */
TEST(SchedulerIdentity, AllOptCombosThreeWorkloads)
{
    const char *names[] = {"compress", "li", "m88ksim"};
    for (const char *wl : names) {
        for (unsigned bits = 0; bits < 32; ++bits) {
            FillOptimizations opts;
            opts.markMoves = bits & 1;
            opts.reassociate = bits & 2;
            opts.scaledAdds = bits & 4;
            opts.placement = bits & 8;
            opts.deadCodeElim = bits & 16;
            SimConfig cfg = SimConfig::withOpts(opts);
            cfg.maxInsts = 3'500;
            RunOut scan = runOne(wl, cfg, SchedulerKind::Scan);
            RunOut wake = runOne(wl, cfg, SchedulerKind::Wakeup);
            expectIdentical(scan, wake,
                            std::string(wl) + "/opts=" +
                                std::to_string(bits));
        }
    }
}

/**
 * Mispredict storm: a starved predictor makes recovery (and thus
 * squashRange) fire constantly, stressing the event-driven core's
 * ready-queue/station removal and load re-arming paths.
 */
TEST(SchedulerIdentity, MispredictStorm)
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.maxInsts = 20'000;
    cfg.bpred.pht0Entries = 64;
    cfg.bpred.pht1Entries = 32;
    cfg.bpred.pht2Entries = 16;
    cfg.bpred.historyBits = 4;
    for (const char *wl : {"go", "compress"}) {
        RunOut scan = runOne(wl, cfg, SchedulerKind::Scan);
        RunOut wake = runOne(wl, cfg, SchedulerKind::Wakeup);
        EXPECT_GT(scan.r.mispredicts, 100u)
            << "storm config not stormy enough to test anything";
        expectIdentical(scan, wake, wl);
    }
}

// ---- core-level lockstep storm -----------------------------------------

/** Completion-recording harness for one core. */
struct StormCore
{
    explicit StormCore(SchedulerKind kind)
        : mem(), core(params(kind), mem)
    {
        core.setCompleteHook(&StormCore::onComplete, this);
    }

    static ExecCoreParams
    params(SchedulerKind kind)
    {
        ExecCoreParams p;
        p.scheduler = kind;
        return p;
    }

    static void
    onComplete(void *ctx, DynInst &di)
    {
        static_cast<StormCore *>(ctx)->completed.push_back(
            {di.seq, di.completeCycle});
    }

    std::vector<std::pair<InstSeqNum, Cycle>> completed;

    MemoryHierarchy mem;
    ExecCore core;
};

/**
 * Drives the scan and wakeup cores in lockstep with an identical
 * randomized stream of dispatches, ticks and suffix squashes
 * (deterministic LCG, no host entropy), asserting identical
 * completion traces and occupancy throughout. Exercises ALU chains,
 * unpipelined divides, loads and stores over a tiny address space
 * (forwarding and unknown-address blocking) and squash waves landing
 * in every structure: stations, ready queues, the store window,
 * pending stores and parked-load waiter lists.
 */
TEST(SchedulerIdentity, RandomizedDispatchSquashStorm)
{
    StormCore scan(SchedulerKind::Scan);
    StormCore wake(SchedulerKind::Wakeup);

    std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
    auto rnd = [&lcg](unsigned bound) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<unsigned>((lcg >> 33) % bound);
    };

    // Parallel twin instructions; twins share all architectural
    // fields and link to the twin of the same producer.
    std::vector<DynInstPtr> liveScan, liveWake;
    std::vector<bool> dead;     // squashed or unusable as producer
    InstSeqNum seq = 1;
    Cycle now = 0;

    auto makeTwin = [&](Op op, int fu) {
        auto mk = [&](std::vector<DynInstPtr> &vec) -> DynInst & {
            DynInstPtr di = allocDynInst();
            di->seq = seq;
            di->inst.op = op;
            di->inst.dest = 3;
            di->inst.src1 = 1;
            di->inst.src2 = 2;
            di->latency = opInfo(op).latency;
            di->fu = fu;
            di->numSrcs = 2;
            di->issueCycle = now;
            vec.push_back(di);
            return *di;
        };
        DynInst &a = mk(liveScan);
        DynInst &b = mk(liveWake);
        dead.push_back(false);
        ++seq;
        return std::pair<DynInst &, DynInst &>(a, b);
    };

    auto linkProducer = [&](unsigned k) {
        // A random live, non-dead *older* instruction (never the
        // just-created one at back()); may end up unlinked.
        if (liveScan.size() < 2)
            return;
        unsigned tries = 4;
        while (tries--) {
            unsigned j =
                rnd(static_cast<unsigned>(liveScan.size()) - 1);
            if (dead[j])
                continue;
            liveScan.back()->src[k].producer = liveScan[j];
            liveWake.back()->src[k].producer = liveWake[j];
            return;
        }
    };

    constexpr unsigned kSteps = 4000;
    for (unsigned step = 0; step < kSteps; ++step) {
        unsigned action = rnd(10);
        if (action < 6) {           // dispatch a small batch
            unsigned n = 1 + rnd(3);
            while (n--) {
                int fu = static_cast<int>(rnd(16));
                if (scan.core.rsFree(static_cast<unsigned>(fu)) == 0)
                    continue;   // both cores fill identically
                unsigned what = rnd(8);
                if (what < 4) {             // ALU / long-latency op
                    Op op = what == 0 ? Op::MUL
                            : what == 1 ? Op::DIV
                                        : Op::ADD;
                    makeTwin(op, fu);
                    linkProducer(0);
                } else if (what < 6) {      // load
                    auto [a, b] = makeTwin(Op::LW, fu);
                    a.isLoad = b.isLoad = true;
                    a.onCorrectPath = b.onCorrectPath = true;
                    a.effAddr = b.effAddr =
                        0x1000 + rnd(16) * 4;
                    linkProducer(0);
                } else {                    // store
                    auto [a, b] = makeTwin(Op::SW, fu);
                    a.isStore = b.isStore = true;
                    a.onCorrectPath = b.onCorrectPath = true;
                    a.effAddr = b.effAddr =
                        0x1000 + rnd(16) * 4;
                    a.dataOperand = b.dataOperand = 1;
                    linkProducer(0);        // address operand
                    linkProducer(1);        // data operand
                }
                scan.core.dispatch(*liveScan.back());
                wake.core.dispatch(*liveWake.back());
            }
        } else if (action < 9) {    // advance one cycle
            ++now;
            scan.core.tick(now);
            wake.core.tick(now);
            ASSERT_EQ(scan.completed.size(), wake.completed.size())
                << "divergence at cycle " << now;
        } else if (!liveScan.empty()) {     // suffix squash
            unsigned j = rnd(static_cast<unsigned>(liveScan.size()));
            InstSeqNum lo = liveScan[j]->seq;
            scan.core.squashRange(lo, seq);
            wake.core.squashRange(lo, seq);
            for (std::size_t i = 0; i < liveScan.size(); ++i) {
                if (liveScan[i]->seq >= lo)
                    dead[i] = true;
            }
        }
        ASSERT_EQ(scan.core.occupancy(), wake.core.occupancy());
    }

    // Drain: tick both cores well past any remaining latency.
    for (unsigned i = 0; i < 300; ++i) {
        ++now;
        scan.core.tick(now);
        wake.core.tick(now);
    }

    // Identical completion traces, compared as (cycle, seq) sets so
    // same-cycle notification order (which is FU order in both
    // designs, but is not part of the timing contract) cannot flake.
    auto key = [](std::pair<InstSeqNum, Cycle> p) {
        return std::pair<Cycle, InstSeqNum>(p.second, p.first);
    };
    auto sorted = [&key](std::vector<std::pair<InstSeqNum, Cycle>> v) {
        std::sort(v.begin(), v.end(),
                  [&key](const auto &x, const auto &y) {
                      return key(x) < key(y);
                  });
        return v;
    };
    EXPECT_EQ(sorted(scan.completed), sorted(wake.completed));
    EXPECT_GT(scan.completed.size(), 500u)
        << "storm completed too little work to be a meaningful test";
    EXPECT_EQ(scan.core.selectedCount(), wake.core.selectedCount());
    EXPECT_EQ(scan.core.loadForwardsCount(),
              wake.core.loadForwardsCount());
    EXPECT_EQ(scan.core.bypassDelayedCount(),
              wake.core.bypassDelayedCount());

    // Tear down: release everything still in the cores before the
    // owning vectors drop their references.
    scan.core.squashRange(0, seq);
    wake.core.squashRange(0, seq);
}

} // namespace
} // namespace tcfill
