/** @file Unit tests for the cache models and memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace tcfill
{
namespace
{

CacheParams
tiny()
{
    // 2 sets x 2 ways x 16B lines.
    return {"tiny", 64, 16, 2};
}

TEST(Cache, Geometry)
{
    SetAssocCache c(tiny());
    EXPECT_EQ(c.numSets(), 2u);
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c(tiny());
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x10f));   // same line
    EXPECT_FALSE(c.access(0x110));  // next line, other set
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    SetAssocCache c(tiny());
    // Set 0 holds lines with bit 4 clear: 0x000, 0x020, 0x040 ...
    c.access(0x000);
    c.access(0x020);
    c.access(0x000);        // 0x020 is now LRU
    c.access(0x040);        // evicts 0x020
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x020));
    EXPECT_TRUE(c.probe(0x040));
}

TEST(Cache, ProbeHasNoSideEffects)
{
    SetAssocCache c(tiny());
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_EQ(c.hits() + c.misses(), 0u);
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, InvalidateAndFlush)
{
    SetAssocCache c(tiny());
    c.access(0x100);
    c.invalidate(0x100);
    EXPECT_FALSE(c.probe(0x100));
    c.access(0x100);
    c.access(0x200);
    c.flush();
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_FALSE(c.probe(0x200));
}

TEST(CacheDeath, BadGeometryIsFatal)
{
    CacheParams p{"bad", 100, 24, 2};
    EXPECT_EXIT(SetAssocCache c(p), ::testing::ExitedWithCode(1),
                "power of two");
}

// ---- hierarchy ----------------------------------------------------------

TEST(Hierarchy, PaperGeometryDefaults)
{
    MemoryHierarchy::Params p;
    EXPECT_EQ(p.l1i.sizeBytes, 4u * 1024);
    EXPECT_EQ(p.l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(p.l2Latency, 6u);
    EXPECT_EQ(p.memLatency, 50u);
}

TEST(Hierarchy, LatencyLadder)
{
    MemoryHierarchy mem;
    // Cold: L1 miss, L2 miss -> memory.
    Cycle t0 = mem.accessData(0x5000, 100);
    EXPECT_EQ(t0, 100 + 6 + 50);
    // Warm: L1 hit is free (latency charged by the load pipeline).
    Cycle t1 = mem.accessData(0x5000, 200);
    EXPECT_EQ(t1, 200u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryHierarchy::Params p;
    p.l1d = {"l1d", 128, 64, 1};    // 2 sets, direct mapped: tiny
    MemoryHierarchy mem(p);
    mem.accessData(0x10000, 0);             // cold miss
    mem.accessData(0x20000, 200);           // evicts 0x10000 from L1
    Cycle t = mem.accessData(0x10000, 400); // L1 miss, L2 hit
    EXPECT_EQ(t, 400 + 6u);
}

TEST(Hierarchy, BusContentionSerializesMemory)
{
    MemoryHierarchy::Params p;
    p.memBusOccupancy = 8;
    MemoryHierarchy mem(p);
    Cycle a = mem.accessData(0x100000, 0);
    Cycle b = mem.accessData(0x200000, 0);
    // Both miss to memory at the same instant; the second waits for
    // the bus.
    EXPECT_EQ(a, 0 + 6 + 50u);
    EXPECT_EQ(b, 0 + 6 + 8 + 50u);
}

TEST(Hierarchy, InstAndDataAreSeparateL1s)
{
    MemoryHierarchy mem;
    mem.accessInst(0x3000, 0);
    // Same line via the data port still misses L1D (hits L2).
    Cycle t = mem.accessData(0x3000, 100);
    EXPECT_EQ(t, 100 + 6u);
    EXPECT_EQ(mem.l1d().misses(), 1u);
    EXPECT_EQ(mem.l1i().misses(), 1u);
    EXPECT_EQ(mem.l2().hits(), 1u);
}

} // namespace
} // namespace tcfill
