/** @file Unit tests for the branch prediction structures. */

#include <gtest/gtest.h>

#include "bpred/predictor.hh"

namespace tcfill
{
namespace
{

// ---- PHT ---------------------------------------------------------------

TEST(Pht, StartsWeaklyNotTaken)
{
    PatternHistoryTable pht(16);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_FALSE(pht.predict(i));
}

TEST(Pht, TwoBitHysteresis)
{
    PatternHistoryTable pht(16);
    pht.update(3, true);            // 1 -> 2: now predicts taken
    EXPECT_TRUE(pht.predict(3));
    pht.update(3, false);           // 2 -> 1
    EXPECT_FALSE(pht.predict(3));
    pht.update(3, true);
    pht.update(3, true);            // saturate at 3
    pht.update(3, true);
    EXPECT_EQ(pht.counter(3), 3);
    pht.update(3, false);           // one wrong outcome keeps taken
    EXPECT_TRUE(pht.predict(3));
}

TEST(Pht, CounterSaturatesLow)
{
    PatternHistoryTable pht(4);
    pht.update(0, false);
    pht.update(0, false);
    pht.update(0, false);
    EXPECT_EQ(pht.counter(0), 0);
}

// ---- multiple-branch predictor ----------------------------------------

TEST(MultiBpred, PaperTableSizes)
{
    MultiBranchPredictor bp;
    // 64K + 16K + 8K two-bit counters = 176 Kbit = 22 KB counters.
    EXPECT_EQ(bp.storageBits(), 2u * (65536 + 16384 + 8192));
}

TEST(MultiBpred, LearnsPerSlot)
{
    // History disabled so every update trains the same index.
    MultiBranchPredictor::Params p;
    p.historyBits = 0;
    MultiBranchPredictor bp(p);
    Addr pc = 0x400100;
    for (int i = 0; i < 4; ++i)
        bp.update(pc, 0, true);
    EXPECT_TRUE(bp.predict(pc, 0));
    // Slots are independent tables: slot 1 is untrained.
    EXPECT_FALSE(bp.predict(pc, 1));
    for (int i = 0; i < 4; ++i)
        bp.update(pc, 1, true);
    EXPECT_TRUE(bp.predict(pc, 1));
}

TEST(MultiBpred, HistoryAffectsIndex)
{
    MultiBranchPredictor bp;
    EXPECT_EQ(bp.history(), 0u);
    bp.pushHistory(true);
    EXPECT_EQ(bp.history(), 1u);
    bp.pushHistory(false);
    EXPECT_EQ(bp.history(), 2u);
}

TEST(MultiBpredDeath, BadSlotPanics)
{
    MultiBranchPredictor bp;
    EXPECT_DEATH(bp.predict(0x400000, 3), "bad slot");
}

// ---- bias table / promotion -----------------------------------------

TEST(Bias, PromotionAtThreshold)
{
    BiasTable::Params p;
    p.promoteThreshold = 4;
    BiasTable bias(p);
    Addr pc = 0x400300;
    for (int i = 0; i < 3; ++i) {
        bias.observe(pc, true);
        EXPECT_FALSE(bias.isPromoted(pc));
    }
    bias.observe(pc, true);
    EXPECT_TRUE(bias.isPromoted(pc));
    EXPECT_TRUE(bias.promotedDirection(pc));
    EXPECT_EQ(bias.promotions(), 1u);
}

TEST(Bias, FlipDemotesAndRestartsRun)
{
    BiasTable::Params p;
    p.promoteThreshold = 3;
    BiasTable bias(p);
    Addr pc = 0x400304;
    for (int i = 0; i < 3; ++i)
        bias.observe(pc, false);
    EXPECT_TRUE(bias.isPromoted(pc));
    bias.observe(pc, true);     // direction flip
    EXPECT_FALSE(bias.isPromoted(pc));
    EXPECT_EQ(bias.demotions(), 1u);
    // New run in the taken direction.
    bias.observe(pc, true);
    bias.observe(pc, true);
    EXPECT_TRUE(bias.isPromoted(pc));
    EXPECT_TRUE(bias.promotedDirection(pc));
}

TEST(Bias, PaperDefaults)
{
    BiasTable bias;
    // 8K entries x 8 bits = 8KB (paper's bias table budget).
    EXPECT_EQ(bias.storageBits(), 8u * 1024 * 8);
    Addr pc = 0x400400;
    for (int i = 0; i < 63; ++i)
        bias.observe(pc, true);
    EXPECT_FALSE(bias.isPromoted(pc));
    bias.observe(pc, true);     // 64th consecutive occurrence
    EXPECT_TRUE(bias.isPromoted(pc));
}

TEST(BiasDeath, PromotedDirectionRequiresPromotion)
{
    BiasTable bias;
    EXPECT_DEATH(bias.promotedDirection(0x400500), "non-promoted");
}

// ---- return address stack ---------------------------------------------

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.top(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, UnderflowReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.top(), 0u);
}

TEST(Ras, OverflowWrapsOldestAway)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);            // overwrites 1
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_TRUE(ras.empty());
}

// ---- indirect predictor --------------------------------------------------

TEST(Indirect, LastTarget)
{
    IndirectPredictor ip(16);
    EXPECT_EQ(ip.predict(0x400600), 0u);
    ip.update(0x400600, 0x401000);
    EXPECT_EQ(ip.predict(0x400600), 0x401000u);
    ip.update(0x400600, 0x402000);
    EXPECT_EQ(ip.predict(0x400600), 0x402000u);
}

TEST(Indirect, IndexByPc)
{
    IndirectPredictor ip(16);
    ip.update(0x400600, 0xaaaa);
    // A different pc maps elsewhere (16 entries, pc>>2 indexing).
    EXPECT_EQ(ip.predict(0x400604), 0u);
}

/** Property: a strongly biased branch is always promotable within
 *  2*threshold observations, whatever the starting state. */
class BiasProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BiasProperty, BiasedBranchPromotes)
{
    BiasTable::Params p;
    p.promoteThreshold = GetParam();
    BiasTable bias(p);
    Addr pc = 0x400700;
    bias.observe(pc, false);    // pollute with one opposite outcome
    for (unsigned i = 0; i < p.promoteThreshold; ++i)
        bias.observe(pc, true);
    EXPECT_TRUE(bias.isPromoted(pc));
    EXPECT_TRUE(bias.promotedDirection(pc));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BiasProperty,
                         ::testing::Values(1u, 2u, 8u, 64u, 127u));

} // namespace
} // namespace tcfill
