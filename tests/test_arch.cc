/** @file Unit tests for Memory and the functional Executor. */

#include <gtest/gtest.h>

#include "arch/executor.hh"
#include "arch/memory.hh"
#include "asm/builder.hh"

namespace tcfill
{
namespace
{

// ---- memory -----------------------------------------------------------

TEST(Memory, ZeroFilled)
{
    Memory m;
    EXPECT_EQ(m.readWord(0x1234), 0u);
    EXPECT_EQ(m.readByte(0xffffffff), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(Memory, LittleEndianWord)
{
    Memory m;
    m.writeWord(0x100, 0x11223344);
    EXPECT_EQ(m.readByte(0x100), 0x44);
    EXPECT_EQ(m.readByte(0x103), 0x11);
    EXPECT_EQ(m.readHalf(0x100), 0x3344);
    EXPECT_EQ(m.readHalf(0x102), 0x1122);
    EXPECT_EQ(m.readWord(0x100), 0x11223344u);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    Addr a = Memory::kPageBytes - 2;
    m.writeWord(a, 0xa1b2c3d4);
    EXPECT_EQ(m.readWord(a), 0xa1b2c3d4u);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(Memory, WriteBlock)
{
    Memory m;
    std::uint8_t data[5] = {1, 2, 3, 4, 5};
    m.writeBlock(0x2000, data, 5);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(m.readByte(0x2000 + i), i + 1);
}

// ---- executor: single-instruction semantics --------------------------

/** Run a short builder program and return the final ArchState. */
ArchState
runProg(const std::function<void(ProgramBuilder &)> &body)
{
    ProgramBuilder pb("t");
    body(pb);
    pb.halt();
    Program p = pb.finish();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    return ex.state();
}

TEST(Executor, AluOps)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.li(1, 7);
        pb.li(2, -3);
        pb.add(3, 1, 2);    // 4
        pb.sub(4, 1, 2);    // 10
        pb.and_(5, 1, 2);   // 7 & -3 = 5
        pb.or_(6, 1, 2);    // -1
        pb.xor_(7, 1, 2);   // -6
        pb.nor(8, 1, 1);    // ~7
        pb.slt(9, 2, 1);    // 1
        pb.sltu(10, 2, 1);  // 0 (unsigned -3 is huge)
        pb.mul(11, 1, 2);   // -21
        pb.div(12, 1, 2);   // -2 (toward zero)
    });
    EXPECT_EQ(s.read(3), 4u);
    EXPECT_EQ(s.read(4), 10u);
    EXPECT_EQ(s.read(5), 5u);
    EXPECT_EQ(s.read(6), 0xffffffffu);
    EXPECT_EQ(s.read(7), 0xfffffffau);
    EXPECT_EQ(s.read(8), ~7u);
    EXPECT_EQ(s.read(9), 1u);
    EXPECT_EQ(s.read(10), 0u);
    EXPECT_EQ(s.read(11), static_cast<std::uint32_t>(-21));
    EXPECT_EQ(s.read(12), static_cast<std::uint32_t>(-2));
}

TEST(Executor, DivideByZeroYieldsZero)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.li(1, 42);
        pb.div(2, 1, 0);
    });
    EXPECT_EQ(s.read(2), 0u);
}

TEST(Executor, Shifts)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.li(1, -8);
        pb.slli(2, 1, 2);   // -32
        pb.srli(3, 1, 2);   // logical
        pb.srai(4, 1, 2);   // -2
        pb.li(5, 3);
        pb.sllv(6, 1, 5);   // -64
        pb.srav(7, 1, 5);   // -1
    });
    EXPECT_EQ(s.read(2), static_cast<std::uint32_t>(-32));
    EXPECT_EQ(s.read(3), 0xfffffff8u >> 2);
    EXPECT_EQ(s.read(4), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(s.read(6), static_cast<std::uint32_t>(-64));
    EXPECT_EQ(s.read(7), 0xffffffffu);
}

TEST(Executor, Immediates)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.lui(1, 0x1234);
        pb.ori(1, 1, 0x5678);
        pb.slti(2, 1, 0);
        pb.sltiu(3, 0, 1);
        pb.andi(4, 1, 0xff00);
        pb.xori(5, 1, 0xffff);
    });
    EXPECT_EQ(s.read(1), 0x12345678u);
    EXPECT_EQ(s.read(2), 0u);
    EXPECT_EQ(s.read(3), 1u);
    EXPECT_EQ(s.read(4), 0x5600u);
    EXPECT_EQ(s.read(5), 0x1234a987u);
}

TEST(Executor, R0AlwaysZero)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.li(1, 99);
        pb.add(0, 1, 1);    // write to r0 discarded
        pb.add(2, 0, 0);
    });
    EXPECT_EQ(s.read(0), 0u);
    EXPECT_EQ(s.read(2), 0u);
}

TEST(Executor, MemoryOps)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        Addr buf = pb.allocData(64, 8);
        pb.la(1, buf);
        pb.li(2, -2);               // 0xfffffffe
        pb.sw(2, 1, 0);
        pb.lw(3, 1, 0);
        pb.lb(4, 1, 0);             // 0xfe -> -2
        pb.lbu(5, 1, 0);            // 0xfe
        pb.lh(6, 1, 0);             // -2
        pb.lhu(7, 1, 0);            // 0xfffe
        pb.sb(2, 1, 8);
        pb.lbu(8, 1, 8);
        pb.sh(2, 1, 12);
        pb.lhu(9, 1, 12);
        pb.li(10, 16);
        pb.swx(2, 1, 10);           // indexed store
        pb.lwx(11, 1, 10);          // indexed load
    });
    EXPECT_EQ(s.read(3), 0xfffffffeu);
    EXPECT_EQ(s.read(4), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(s.read(5), 0xfeu);
    EXPECT_EQ(s.read(6), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(s.read(7), 0xfffeu);
    EXPECT_EQ(s.read(8), 0xfeu);
    EXPECT_EQ(s.read(9), 0xfffeu);
    EXPECT_EQ(s.read(11), 0xfffffffeu);
}

TEST(Executor, BranchDirections)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        Label t1 = pb.newLabel(), t2 = pb.newLabel();
        pb.li(1, 5);
        pb.li(9, 0);
        pb.beq(1, 0, t1);       // not taken
        pb.addi(9, 9, 1);       // executed
        pb.bind(t1);
        pb.bgtz(1, t2);         // taken
        pb.addi(9, 9, 100);     // skipped
        pb.bind(t2);
        pb.addi(9, 9, 10);
    });
    EXPECT_EQ(s.read(9), 11u);
}

TEST(Executor, CallAndReturn)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        Label fn = pb.newLabel(), over = pb.newLabel();
        pb.j(over);
        pb.bind(fn);
        pb.addi(2, 1, 1);
        pb.ret();
        pb.bind(over);
        pb.li(1, 41);
        pb.jal(fn);
        pb.move(3, 2);
    });
    EXPECT_EQ(s.read(2), 42u);
    EXPECT_EQ(s.read(3), 42u);
}

TEST(Executor, IndirectCall)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        Label fn = pb.newLabel(), over = pb.newLabel();
        pb.j(over);
        Addr fn_addr = pb.here();
        pb.bind(fn);
        pb.li(2, 77);
        pb.ret();
        pb.bind(over);
        pb.la(4, fn_addr);
        pb.jalr(kRegRA, 4);
    });
    EXPECT_EQ(s.read(2), 77u);
}

TEST(Executor, RecordsBranchesAndAddresses)
{
    ProgramBuilder pb("t");
    Addr buf = pb.allocData(16, 4);
    Label skip = pb.newLabel();
    pb.la(1, buf);
    pb.sw(1, 1, 4);
    pb.beq(0, 0, skip);
    pb.nop();
    pb.bind(skip);
    pb.halt();
    Program p = pb.finish();
    Executor ex(p);

    std::vector<ExecRecord> recs;
    while (!ex.halted())
        recs.push_back(ex.step());

    // la is a single lui here (low half zero); then sw, beq, halt
    // (nop skipped by the taken branch).
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[1].effAddr, buf + 4);
    EXPECT_TRUE(recs[2].taken);
    EXPECT_EQ(recs[2].nextPc, recs[3].pc);
    // Sequence numbers are dense.
    for (std::size_t i = 0; i < recs.size(); ++i)
        EXPECT_EQ(recs[i].seq, i);
}

TEST(Executor, StackPointerInitialized)
{
    ProgramBuilder pb("t");
    pb.halt();
    Program p = pb.finish();
    Executor ex(p);
    EXPECT_EQ(ex.state().read(kRegSP),
              static_cast<std::uint32_t>(p.stackTop));
}

TEST(Executor, RunFunctionalCapsInstructions)
{
    ProgramBuilder pb("t");
    Label top = pb.newLabel();
    pb.bind(top);
    pb.j(top);      // infinite loop
    Program p = pb.finish();
    EXPECT_EQ(runFunctional(p, 1000), 1000u);
}

TEST(ExecutorDeath, WildJumpIsFatal)
{
    ProgramBuilder pb("t");
    pb.li(1, 0x100);
    pb.jr(1);       // outside text
    Program p = pb.finish();
    Executor ex(p);
    EXPECT_EXIT(
        {
            while (!ex.halted())
                ex.step();
        },
        ::testing::ExitedWithCode(1), "escaped the text segment");
}

} // namespace
} // namespace tcfill
