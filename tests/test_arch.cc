/**
 * @file Unit tests for Memory (including the dirty-page journal), the
 * functional Executor (step and fast-forward paths) and architectural
 * checkpoint capture/restore.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "arch/checkpoint.hh"
#include "arch/executor.hh"
#include "arch/memory.hh"
#include "asm/builder.hh"
#include "tracefile/format.hh"
#include "workloads/suite.hh"

namespace tcfill
{
namespace
{

// ---- memory -----------------------------------------------------------

TEST(Memory, ZeroFilled)
{
    Memory m;
    EXPECT_EQ(m.readWord(0x1234), 0u);
    EXPECT_EQ(m.readByte(0xffffffff), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(Memory, LittleEndianWord)
{
    Memory m;
    m.writeWord(0x100, 0x11223344);
    EXPECT_EQ(m.readByte(0x100), 0x44);
    EXPECT_EQ(m.readByte(0x103), 0x11);
    EXPECT_EQ(m.readHalf(0x100), 0x3344);
    EXPECT_EQ(m.readHalf(0x102), 0x1122);
    EXPECT_EQ(m.readWord(0x100), 0x11223344u);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    Addr a = Memory::kPageBytes - 2;
    m.writeWord(a, 0xa1b2c3d4);
    EXPECT_EQ(m.readWord(a), 0xa1b2c3d4u);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(Memory, WriteBlock)
{
    Memory m;
    std::uint8_t data[5] = {1, 2, 3, 4, 5};
    m.writeBlock(0x2000, data, 5);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(m.readByte(0x2000 + i), i + 1);
}

// ---- memory: dirty-page journal --------------------------------------

TEST(Memory, DirtyTrackingFollowsWrites)
{
    Memory m;
    EXPECT_EQ(m.dirtyPageCount(), 0u);
    m.writeWord(0x100, 1);                      // page 0
    m.writeByte(5 * Memory::kPageBytes, 2);     // page 5
    m.writeHalf(0x104, 3);                      // page 0 again
    EXPECT_EQ(m.dirtyPageCount(), 2u);
    const std::vector<Addr> nos = m.dirtyPageNumbers();
    ASSERT_EQ(nos.size(), 2u);
    EXPECT_EQ(nos[0], 0u);      // ascending
    EXPECT_EQ(nos[1], 5u);

    m.clearDirty();
    EXPECT_EQ(m.dirtyPageCount(), 0u);
    // Reads never dirty.
    EXPECT_EQ(m.readWord(0x100), 1u);
    EXPECT_EQ(m.dirtyPageCount(), 0u);
    // Pages stay materialized across clearDirty.
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(Memory, DirtyMarkingSurvivesReadMruPriming)
{
    // findPage() primes the shared last-page MRU on the read path; a
    // following write to the same page takes touchPage's MRU fast path
    // and must still land in the dirty journal.
    Memory m;
    m.writeWord(0x200, 7);
    m.clearDirty();
    EXPECT_EQ(m.readWord(0x200), 7u);   // primes the MRU
    m.writeWord(0x204, 8);              // MRU fast path
    ASSERT_EQ(m.dirtyPageCount(), 1u);
    EXPECT_EQ(m.dirtyPageNumbers()[0], 0u);
}

TEST(Memory, WriteBlockDirtiesEveryTouchedPage)
{
    Memory m;
    std::vector<std::uint8_t> buf(2 * Memory::kPageBytes + 8, 0xab);
    m.writeBlock(Memory::kPageBytes - 4, buf.data(), buf.size());
    const std::vector<Addr> nos = m.dirtyPageNumbers();
    ASSERT_EQ(nos.size(), 4u);
    for (std::size_t i = 0; i < nos.size(); ++i)
        EXPECT_EQ(nos[i], i);
}

TEST(Memory, DirtyPageCountBoundedByTouchedPages)
{
    Memory m;
    // A million stores into one page: the journal stays at one entry.
    for (int i = 0; i < 1'000'000; ++i)
        m.writeWord(0x3000 + (i % 256) * 4, i);
    EXPECT_EQ(m.dirtyPageCount(), 1u);
    EXPECT_EQ(m.numPages(), 1u);
}

// ---- executor: single-instruction semantics --------------------------

/** Run a short builder program and return the final ArchState. */
ArchState
runProg(const std::function<void(ProgramBuilder &)> &body)
{
    ProgramBuilder pb("t");
    body(pb);
    pb.halt();
    Program p = pb.finish();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    return ex.state();
}

TEST(Executor, AluOps)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.li(1, 7);
        pb.li(2, -3);
        pb.add(3, 1, 2);    // 4
        pb.sub(4, 1, 2);    // 10
        pb.and_(5, 1, 2);   // 7 & -3 = 5
        pb.or_(6, 1, 2);    // -1
        pb.xor_(7, 1, 2);   // -6
        pb.nor(8, 1, 1);    // ~7
        pb.slt(9, 2, 1);    // 1
        pb.sltu(10, 2, 1);  // 0 (unsigned -3 is huge)
        pb.mul(11, 1, 2);   // -21
        pb.div(12, 1, 2);   // -2 (toward zero)
    });
    EXPECT_EQ(s.read(3), 4u);
    EXPECT_EQ(s.read(4), 10u);
    EXPECT_EQ(s.read(5), 5u);
    EXPECT_EQ(s.read(6), 0xffffffffu);
    EXPECT_EQ(s.read(7), 0xfffffffau);
    EXPECT_EQ(s.read(8), ~7u);
    EXPECT_EQ(s.read(9), 1u);
    EXPECT_EQ(s.read(10), 0u);
    EXPECT_EQ(s.read(11), static_cast<std::uint32_t>(-21));
    EXPECT_EQ(s.read(12), static_cast<std::uint32_t>(-2));
}

TEST(Executor, DivideByZeroYieldsZero)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.li(1, 42);
        pb.div(2, 1, 0);
    });
    EXPECT_EQ(s.read(2), 0u);
}

TEST(Executor, Shifts)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.li(1, -8);
        pb.slli(2, 1, 2);   // -32
        pb.srli(3, 1, 2);   // logical
        pb.srai(4, 1, 2);   // -2
        pb.li(5, 3);
        pb.sllv(6, 1, 5);   // -64
        pb.srav(7, 1, 5);   // -1
    });
    EXPECT_EQ(s.read(2), static_cast<std::uint32_t>(-32));
    EXPECT_EQ(s.read(3), 0xfffffff8u >> 2);
    EXPECT_EQ(s.read(4), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(s.read(6), static_cast<std::uint32_t>(-64));
    EXPECT_EQ(s.read(7), 0xffffffffu);
}

TEST(Executor, Immediates)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.lui(1, 0x1234);
        pb.ori(1, 1, 0x5678);
        pb.slti(2, 1, 0);
        pb.sltiu(3, 0, 1);
        pb.andi(4, 1, 0xff00);
        pb.xori(5, 1, 0xffff);
    });
    EXPECT_EQ(s.read(1), 0x12345678u);
    EXPECT_EQ(s.read(2), 0u);
    EXPECT_EQ(s.read(3), 1u);
    EXPECT_EQ(s.read(4), 0x5600u);
    EXPECT_EQ(s.read(5), 0x1234a987u);
}

TEST(Executor, R0AlwaysZero)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        pb.li(1, 99);
        pb.add(0, 1, 1);    // write to r0 discarded
        pb.add(2, 0, 0);
    });
    EXPECT_EQ(s.read(0), 0u);
    EXPECT_EQ(s.read(2), 0u);
}

TEST(Executor, MemoryOps)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        Addr buf = pb.allocData(64, 8);
        pb.la(1, buf);
        pb.li(2, -2);               // 0xfffffffe
        pb.sw(2, 1, 0);
        pb.lw(3, 1, 0);
        pb.lb(4, 1, 0);             // 0xfe -> -2
        pb.lbu(5, 1, 0);            // 0xfe
        pb.lh(6, 1, 0);             // -2
        pb.lhu(7, 1, 0);            // 0xfffe
        pb.sb(2, 1, 8);
        pb.lbu(8, 1, 8);
        pb.sh(2, 1, 12);
        pb.lhu(9, 1, 12);
        pb.li(10, 16);
        pb.swx(2, 1, 10);           // indexed store
        pb.lwx(11, 1, 10);          // indexed load
    });
    EXPECT_EQ(s.read(3), 0xfffffffeu);
    EXPECT_EQ(s.read(4), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(s.read(5), 0xfeu);
    EXPECT_EQ(s.read(6), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(s.read(7), 0xfffeu);
    EXPECT_EQ(s.read(8), 0xfeu);
    EXPECT_EQ(s.read(9), 0xfffeu);
    EXPECT_EQ(s.read(11), 0xfffffffeu);
}

TEST(Executor, BranchDirections)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        Label t1 = pb.newLabel(), t2 = pb.newLabel();
        pb.li(1, 5);
        pb.li(9, 0);
        pb.beq(1, 0, t1);       // not taken
        pb.addi(9, 9, 1);       // executed
        pb.bind(t1);
        pb.bgtz(1, t2);         // taken
        pb.addi(9, 9, 100);     // skipped
        pb.bind(t2);
        pb.addi(9, 9, 10);
    });
    EXPECT_EQ(s.read(9), 11u);
}

TEST(Executor, CallAndReturn)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        Label fn = pb.newLabel(), over = pb.newLabel();
        pb.j(over);
        pb.bind(fn);
        pb.addi(2, 1, 1);
        pb.ret();
        pb.bind(over);
        pb.li(1, 41);
        pb.jal(fn);
        pb.move(3, 2);
    });
    EXPECT_EQ(s.read(2), 42u);
    EXPECT_EQ(s.read(3), 42u);
}

TEST(Executor, IndirectCall)
{
    ArchState s = runProg([](ProgramBuilder &pb) {
        Label fn = pb.newLabel(), over = pb.newLabel();
        pb.j(over);
        Addr fn_addr = pb.here();
        pb.bind(fn);
        pb.li(2, 77);
        pb.ret();
        pb.bind(over);
        pb.la(4, fn_addr);
        pb.jalr(kRegRA, 4);
    });
    EXPECT_EQ(s.read(2), 77u);
}

TEST(Executor, RecordsBranchesAndAddresses)
{
    ProgramBuilder pb("t");
    Addr buf = pb.allocData(16, 4);
    Label skip = pb.newLabel();
    pb.la(1, buf);
    pb.sw(1, 1, 4);
    pb.beq(0, 0, skip);
    pb.nop();
    pb.bind(skip);
    pb.halt();
    Program p = pb.finish();
    Executor ex(p);

    std::vector<ExecRecord> recs;
    while (!ex.halted())
        recs.push_back(ex.step());

    // la is a single lui here (low half zero); then sw, beq, halt
    // (nop skipped by the taken branch).
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[1].effAddr, buf + 4);
    EXPECT_TRUE(recs[2].taken);
    EXPECT_EQ(recs[2].nextPc, recs[3].pc);
    // Sequence numbers are dense.
    for (std::size_t i = 0; i < recs.size(); ++i)
        EXPECT_EQ(recs[i].seq, i);
}

TEST(Executor, StackPointerInitialized)
{
    ProgramBuilder pb("t");
    pb.halt();
    Program p = pb.finish();
    Executor ex(p);
    EXPECT_EQ(ex.state().read(kRegSP),
              static_cast<std::uint32_t>(p.stackTop));
}

TEST(Executor, RunFunctionalCapsInstructions)
{
    ProgramBuilder pb("t");
    Label top = pb.newLabel();
    pb.bind(top);
    pb.j(top);      // infinite loop
    Program p = pb.finish();
    EXPECT_EQ(runFunctional(p, 1000), 1000u);
}

TEST(ExecutorDeath, WildJumpIsFatal)
{
    ProgramBuilder pb("t");
    pb.li(1, 0x100);
    pb.jr(1);       // outside text
    Program p = pb.finish();
    Executor ex(p);
    EXPECT_EXIT(
        {
            while (!ex.halted())
                ex.step();
        },
        ::testing::ExitedWithCode(1), "escaped the text segment");
}

TEST(ExecutorDeath, WildJumpIsFatalOnFastPath)
{
    ProgramBuilder pb("t");
    pb.li(1, 0x100);
    pb.jr(1);       // outside text
    Program p = pb.finish();
    Executor ex(p);
    EXPECT_EXIT(
        {
            while (!ex.halted())
                ex.fastStep();
        },
        ::testing::ExitedWithCode(1), "escaped the text segment");
}

// ---- executor: fast-forward path -------------------------------------

/** CRC over the committed stream of @p exec for up to @p n steps. */
std::uint32_t
streamCrc(Executor &exec, InstSeqNum n)
{
    std::uint32_t crc = 0;
    for (InstSeqNum i = 0; i < n && !exec.halted(); ++i) {
        const ExecRecord rec = exec.step();
        // Fixed-width scalar image of the record (tcfill-trace CRC
        // discipline: every architecturally meaningful field).
        std::uint64_t img[5] = {rec.seq, rec.pc, rec.nextPc,
                                rec.effAddr,
                                (static_cast<std::uint64_t>(
                                     encode(rec.inst))
                                 << 1) |
                                    (rec.taken ? 1 : 0)};
        crc = tracefile::crc32(img, sizeof(img), crc);
    }
    return crc;
}

TEST(ExecutorFast, FastStepMatchesStepOnEveryWorkload)
{
    // Lockstep: the fast path must produce the exact architectural
    // state transitions and ends-basic-block classification of the
    // record-building path.
    for (const auto &w : workloads::suite()) {
        const Program prog = w.build(1);
        Executor ref(prog), fast(prog);
        for (InstSeqNum i = 0; i < 20'000 && !ref.halted(); ++i) {
            const ExecRecord rec = ref.step();
            const bool ends = fast.fastStep();
            ASSERT_EQ(ends, rec.inst.isControl() ||
                                rec.inst.isSerializing())
                << w.name << " @" << i;
            ASSERT_EQ(fast.state().pc, ref.state().pc)
                << w.name << " @" << i;
            ASSERT_EQ(fast.instCount(), ref.instCount());
            ASSERT_EQ(fast.halted(), ref.halted());
        }
        EXPECT_EQ(0, std::memcmp(fast.state().regs.data(),
                                 ref.state().regs.data(),
                                 sizeof(ref.state().regs)))
            << w.name;
    }
}

TEST(ExecutorFast, FastForwardCountsAndStopsAtHalt)
{
    ProgramBuilder pb("t");
    Label top = pb.newLabel();
    pb.li(1, 10);
    pb.bind(top);
    pb.addi(1, 1, -1);
    pb.bgtz(1, top);
    pb.halt();
    Program p = pb.finish();

    Executor ex(p);
    EXPECT_EQ(ex.fastForward(5), 5u);
    EXPECT_FALSE(ex.halted());
    // 1 li + 10 x (addi, bgtz) + halt = 22 total; 17 remain.
    EXPECT_EQ(ex.fastForward(1'000'000), 17u);
    EXPECT_TRUE(ex.halted());
    EXPECT_EQ(ex.instCount(), 22u);
}

TEST(ExecutorFast, SelfModifyingStoreInvalidatesPredecode)
{
    // Store a new instruction word over a later text slot, then
    // execute it: the fast path must re-decode and match step().
    ProgramBuilder pb("t");
    Addr patch_site;
    {
        Label over = pb.newLabel();
        pb.li(1, 0);
        Instruction patch;      // addi r1, r1, 41
        patch.op = Op::ADDI;
        patch.dest = 1;
        patch.src1 = 1;
        patch.imm = 41;
        pb.li(2, static_cast<std::int32_t>(encode(patch)));
        pb.j(over);
        patch_site = pb.here();
        pb.nop();               // will be overwritten with the addi
        pb.halt();
        pb.bind(over);
        pb.la(3, patch_site);
        pb.sw(2, 3, 0);         // self-modifying store into text
        pb.la(4, patch_site);
        pb.jr(4);               // run the patched instruction
    }
    Program p = pb.finish();

    Executor slow(p);
    while (!slow.halted())
        slow.step();

    Executor fast(p);
    EXPECT_EQ(fast.fastForward(1'000), slow.instCount());
    EXPECT_TRUE(fast.halted());
    EXPECT_EQ(fast.state().read(1), 41u);
    EXPECT_EQ(fast.state().read(1), slow.state().read(1));
}

// ---- architectural checkpoints ---------------------------------------

TEST(Checkpoint, IncrementalDeltasAndPageBounds)
{
    const Program prog = workloads::build("compress", 1);
    Executor exec(prog);
    CheckpointStore ckpts(prog, exec);

    // Boundary zero journals nothing: the fresh-Executor image is
    // implied by the Program.
    ckpts.capture();
    EXPECT_EQ(ckpts.at(0).pages.size(), 0u);

    exec.fastForward(10'000);
    ckpts.capture();
    exec.fastForward(10'000);
    ckpts.capture();
    ASSERT_EQ(ckpts.size(), 3u);

    // Deltas are incremental: each capture journals at most the pages
    // the whole run has materialized, and bounds hold per capture.
    const std::size_t all_pages = exec.memory().numPages();
    EXPECT_GT(ckpts.at(1).pages.size(), 0u);
    EXPECT_LE(ckpts.at(1).pages.size(), all_pages);
    EXPECT_LE(ckpts.at(2).pages.size(), all_pages);
    EXPECT_EQ(ckpts.pagesStored(),
              ckpts.at(1).pages.size() + ckpts.at(2).pages.size());
    // pagesUpTo counts distinct pages (what one restore copies), so
    // pages re-dirtied across deltas count once, not per delta.
    EXPECT_LE(ckpts.pagesUpTo(2), ckpts.pagesStored());
    EXPECT_GE(ckpts.pagesUpTo(2),
              std::max(ckpts.at(1).pages.size(),
                       ckpts.at(2).pages.size()));

    EXPECT_EQ(ckpts.latestAtOrBefore(0), 0u);
    EXPECT_EQ(ckpts.latestAtOrBefore(9'999), 0u);
    EXPECT_EQ(ckpts.latestAtOrBefore(10'000), 1u);
    EXPECT_EQ(ckpts.latestAtOrBefore(25'000), 2u);
}

TEST(Checkpoint, RestoredStreamCrcEqualAcrossSuite)
{
    // The committed stream after a restore must be bit-identical to
    // uninterrupted execution, for every workload in the suite.
    constexpr InstSeqNum kBoundary = 5'000;
    constexpr InstSeqNum kTail = 5'000;
    for (const auto &w : workloads::suite()) {
        const Program prog = w.build(1);

        // Uninterrupted reference: fast-forward to the boundary on
        // the *record* path, then CRC the next kTail records.
        Executor ref(prog);
        for (InstSeqNum i = 0; i < kBoundary && !ref.halted(); ++i)
            ref.step();
        const InstSeqNum boundary_seq = ref.instCount();
        const std::uint32_t want = streamCrc(ref, kTail);

        // Checkpointed run: profile on the fast path, capturing at
        // the same boundary, then restore and CRC.
        Executor prof(prog);
        CheckpointStore ckpts(prog, prof);
        ckpts.capture();
        prof.fastForward(kBoundary);
        const std::size_t idx = ckpts.capture();

        std::uint64_t pages_applied = 0;
        auto restored = ckpts.restore(idx, &pages_applied);
        EXPECT_EQ(restored->instCount(), boundary_seq) << w.name;
        EXPECT_EQ(pages_applied, ckpts.pagesUpTo(idx)) << w.name;
        EXPECT_EQ(streamCrc(*restored, kTail), want) << w.name;
    }
}

TEST(Checkpoint, RestoreIsRepeatableAfterDonorAdvances)
{
    // Restoring twice — including after the profiling executor has
    // run far past the checkpoint — yields the same machine.
    const Program prog = workloads::build("li", 1);
    Executor prof(prog);
    CheckpointStore ckpts(prog, prof);
    ckpts.capture();
    prof.fastForward(7'000);
    const std::size_t idx = ckpts.capture();

    auto first = ckpts.restore(idx);
    prof.fastForward(50'000);   // donor moves on; journal is immutable
    auto second = ckpts.restore(idx);

    const std::uint32_t a = streamCrc(*first, 3'000);
    const std::uint32_t b = streamCrc(*second, 3'000);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace tcfill
