/** @file Unit tests for common/bitfield.hh. */

#include <gtest/gtest.h>

#include "common/bitfield.hh"

namespace tcfill
{
namespace
{

TEST(Bitfield, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(16), 0xffffu);
    EXPECT_EQ(mask(32), 0xffffffffu);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(mask(64), ~std::uint64_t(0));
}

TEST(Bitfield, ExtractRanges)
{
    const std::uint64_t v = 0xdeadbeefcafebabeull;
    EXPECT_EQ(bits(v, 7, 0), 0xbeu);
    EXPECT_EQ(bits(v, 15, 8), 0xbau);
    EXPECT_EQ(bits(v, 63, 56), 0xdeu);
    EXPECT_EQ(bits(v, 63, 0), v);
    EXPECT_EQ(bits(v, 0, 0), v & 1);
}

TEST(Bitfield, ExtractSingle)
{
    EXPECT_EQ(bits(0b1010, 1), 1u);
    EXPECT_EQ(bits(0b1010, 0), 0u);
    EXPECT_EQ(bits(0b1010, 3), 1u);
}

TEST(Bitfield, InsertRoundTrip)
{
    std::uint64_t v = 0;
    v = insertBits(v, 31, 26, 0x2b);
    v = insertBits(v, 25, 21, 0x15);
    v = insertBits(v, 15, 0, 0x1234);
    EXPECT_EQ(bits(v, 31, 26), 0x2bu);
    EXPECT_EQ(bits(v, 25, 21), 0x15u);
    EXPECT_EQ(bits(v, 15, 0), 0x1234u);
}

TEST(Bitfield, InsertMasksField)
{
    // Inserted values wider than the field are truncated.
    std::uint64_t v = insertBits(0, 3, 0, 0xff);
    EXPECT_EQ(v, 0xfu);
}

TEST(Bitfield, InsertPreservesOtherBits)
{
    std::uint64_t v = ~std::uint64_t(0);
    v = insertBits(v, 11, 4, 0);
    EXPECT_EQ(bits(v, 3, 0), 0xfu);
    EXPECT_EQ(bits(v, 11, 4), 0u);
    EXPECT_EQ(bits(v, 63, 12), mask(52));
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x7fff, 16), 32767);
    EXPECT_EQ(sext(0xffff, 16), -1);
    EXPECT_EQ(sext(0, 16), 0);
    EXPECT_EQ(sext(0x2, 2), -2);
    EXPECT_EQ(sext(0x1, 2), 1);
}

TEST(Bitfield, SextIgnoresHighBits)
{
    // Only the low nbits participate.
    EXPECT_EQ(sext(0xdead0001, 16), 1);
    EXPECT_EQ(sext(0xdead8001, 16), -32767);
}

TEST(Bitfield, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(Bitfield, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(Bitfield, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(1), 1u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~std::uint64_t(0)), 64u);
}

/** Property sweep: extract(insert(x)) == x over many field shapes. */
class BitfieldRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitfieldRoundTrip, InsertExtractIdentity)
{
    unsigned first = GetParam();
    for (unsigned width = 1; width + first <= 64; width += 7) {
        unsigned last = first + width - 1;
        std::uint64_t field = 0x5a5a5a5a5a5a5a5aull & mask(width);
        std::uint64_t v = insertBits(0x123456789abcdef0ull, last, first,
                                     field);
        EXPECT_EQ(bits(v, last, first), field)
            << "first=" << first << " last=" << last;
    }
}

INSTANTIATE_TEST_SUITE_P(Fields, BitfieldRoundTrip,
                         ::testing::Values(0u, 1u, 5u, 16u, 21u, 26u,
                                           31u, 40u, 57u));

} // namespace
} // namespace tcfill
