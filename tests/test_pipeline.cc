/**
 * @file
 * Direct unit tests for the decomposed pipeline stages (DESIGN.md
 * §10): each stage is driven in isolation through stub latches, plus
 * a StagePolicy substitution check through the composition root.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "pipeline/dispatch_rename.hh"
#include "pipeline/fetch_engine.hh"
#include "pipeline/issue_stage.hh"
#include "pipeline/latches.hh"
#include "pipeline/oracle.hh"
#include "pipeline/policy.hh"
#include "pipeline/recovery.hh"
#include "pipeline/retire_unit.hh"
#include "sim/processor.hh"

namespace tcfill
{
namespace
{

using namespace tcfill::pipeline;

/** A counted loop; long enough to exercise every stage. */
Program
loopProgram(int iters)
{
    ProgramBuilder pb("ut-loop");
    pb.li(2, iters);
    pb.li(3, 0);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.add(3, 3, 2);
    pb.addi(2, 2, -1);
    pb.bgtz(2, top);
    pb.halt();
    return pb.finish();
}

/** A short straight-line program (entry + a few ALU ops + halt). */
Program
straightProgram(int alu_ops = 2)
{
    ProgramBuilder pb("ut-straight");
    pb.li(1, 7);
    for (int i = 0; i < alu_ops; ++i)
        pb.addi(1, 1, 1);
    pb.halt();
    return pb.finish();
}

/** Stub machine: every substrate a stage env can ask for. */
struct StubMachine
{
    explicit StubMachine(const Program &prog)
        : exec(prog), mem(cfg.mem), bias(cfg.bias),
          tcache(cfg.tcache), fill(cfg.fill, tcache, bias),
          oracle(exec),
          issue(IssueEnv{cfg.core, mem, dispatch_latch, events})
    {
        ctrl.pc = prog.entry;
    }

    SimConfig cfg = SimConfig::withOpts(FillOptimizations::none());
    SlabArena arena;
    Executor exec;
    MemoryHierarchy mem;
    BiasTable bias;
    TraceCache tcache;
    FillUnit fill;
    OracleStream oracle;

    FetchControl ctrl;
    FetchLatch fetch_latch;
    DispatchLatch dispatch_latch;
    InstWindow window;
    ResolutionQueue events;

    IssueStage issue;
};

/** A heap-backed window entry for latch-only stage tests. */
DynInstPtr
windowInst(InstSeqNum seq, Addr pc = 0x1000)
{
    DynInstPtr di = allocDynInst();
    di->seq = seq;
    di->pc = pc;
    return di;
}

// --------------------------------------------------------------------
// FetchEngine: oracle -> FetchLatch handoff
// --------------------------------------------------------------------

TEST(FetchEngine, HandsCommittedPathLinesToLatch)
{
    Program p = straightProgram();
    StubMachine m(p);
    FetchEngine fetch(FetchEnv{m.cfg, m.oracle, m.arena, m.mem,
                               m.tcache, m.ctrl, m.fetch_latch,
                               m.issue.numFus()});

    // Cold caches: the first ticks ride out the I-cache miss, then a
    // line lands in the latch.
    Cycle now = 0;
    while (m.fetch_latch.empty() && now < 1000)
        fetch.tick(now++);
    ASSERT_FALSE(m.fetch_latch.empty());

    const FetchLine &line = m.fetch_latch.lines.front();
    ASSERT_FALSE(line.insts.empty());
    EXPECT_FALSE(line.fromTrace);  // nothing installed yet
    EXPECT_EQ(line.insts.front()->pc, p.entry);
    EXPECT_EQ(line.insts.front()->seq, 1u);
    for (std::size_t i = 1; i < line.insts.size(); ++i)
        EXPECT_EQ(line.insts[i]->seq, line.insts[i - 1]->seq + 1);
    EXPECT_EQ(fetch.stats().counterValue("icache_lines"), 1u);
}

TEST(FetchEngine, RespectsLatchCapacity)
{
    // Straight-line code: no branch ever stalls fetch, so only the
    // latch capacity can throttle it.
    Program p = straightProgram(200);
    StubMachine m(p);
    FetchEngine fetch(FetchEnv{m.cfg, m.oracle, m.arena, m.mem,
                               m.tcache, m.ctrl, m.fetch_latch,
                               m.issue.numFus()});

    // Never drain the latch: fetch must self-throttle at the
    // configured queue depth instead of growing without bound.
    for (Cycle now = 0; now < 2000; ++now) {
        fetch.tick(now);
        ASSERT_LE(m.fetch_latch.size(), m.cfg.fetchQueueLines);
    }
    EXPECT_EQ(m.fetch_latch.size(), m.cfg.fetchQueueLines);
}

// --------------------------------------------------------------------
// RecoveryController: squash / rescue sequence-range edges
// --------------------------------------------------------------------

struct RecoveryFixture : ::testing::Test
{
    RecoveryFixture()
        : m(loopProgram(4)),
          recovery(RecoveryEnv{m.window, rename, m.ctrl, m.fetch_latch,
                               m.issue, m.events})
    {
        for (InstSeqNum s = 1; s <= 10; ++s)
            m.window.insts.push_back(windowInst(s));
    }

    bool squashed(InstSeqNum s) const
    {
        return m.window.insts[s - 1]->squashed();
    }

    StubMachine m;
    RenameTable rename;
    RecoveryController recovery;
};

TEST_F(RecoveryFixture, SquashRangeBoundsAreHalfOpen)
{
    // Squash [4, 9) sparing the rescue range [6, 8).
    recovery.squashWindow(4, 9, 6, 8, /*now=*/5);

    for (InstSeqNum s : {1u, 2u, 3u})
        EXPECT_FALSE(squashed(s)) << "seq " << s << " below lo";
    EXPECT_TRUE(squashed(4));   // lo is inclusive
    EXPECT_TRUE(squashed(5));
    EXPECT_FALSE(squashed(6));  // rescue lo is inclusive
    EXPECT_FALSE(squashed(7));
    EXPECT_TRUE(squashed(8));   // rescue hi is exclusive
    EXPECT_FALSE(squashed(9));  // hi is exclusive
    EXPECT_FALSE(squashed(10));
    EXPECT_EQ(recovery.stats().counterValue("squashes"), 1u);
}

TEST_F(RecoveryFixture, MispredictRescuesInactiveRangeAndRedirects)
{
    // Window: branch at seq 5; 6..7 fetched inactively along the
    // correct path (the rescue range); 8.. on the wrong path.
    DynInstPtr br = m.window.insts[4];
    br->isBranch = true;
    br->mispredicted = true;
    br->redirectPc = 0x4444;
    br->fetchCycle = 2;
    br->rescueLo = 6;
    br->rescueHi = 8;
    for (InstSeqNum s : {6u, 7u})
        m.window.insts[s - 1]->inactive = true;

    recovery.resolveBranch(br, /*now=*/10);

    EXPECT_FALSE(m.window.insts[5]->inactive);  // rescued...
    EXPECT_FALSE(m.window.insts[6]->inactive);
    EXPECT_FALSE(squashed(6));                  // ...and spared
    EXPECT_FALSE(squashed(7));
    EXPECT_TRUE(squashed(8));                   // wrong path dies
    EXPECT_TRUE(squashed(10));
    EXPECT_FALSE(squashed(5));                  // the branch survives
    EXPECT_EQ(m.ctrl.pc, 0x4444u);              // fetch redirected
    EXPECT_EQ(m.ctrl.avail, 11u);               // next cycle at best
    // Stall charged from fetch of the branch to its resolution.
    EXPECT_EQ(recovery.stallCycles(), 8u);
    EXPECT_EQ(recovery.stats().counterValue("rescued_insts"), 2u);
}

TEST_F(RecoveryFixture, CorrectPredictionDiscardsInactiveTail)
{
    DynInstPtr br = m.window.insts[4];
    br->isBranch = true;
    br->mispredicted = false;
    br->discardLo = 9;
    br->discardHi = 11;

    recovery.resolveBranch(br, /*now=*/3);

    for (InstSeqNum s = 1; s <= 8; ++s)
        EXPECT_FALSE(squashed(s)) << "seq " << s;
    EXPECT_TRUE(squashed(9));
    EXPECT_TRUE(squashed(10));
    EXPECT_EQ(recovery.stallCycles(), 0u);
}

// --------------------------------------------------------------------
// RetireUnit: window head -> FillUnit handoff
// --------------------------------------------------------------------

TEST(RetireUnit, FeedsCommittedInstructionsToFillUnit)
{
    // A loop: retiring past the conditional-branch budget
    // (kSegmentMaxCondBranches) closes a fill-unit segment, which is
    // when the fill.segments/insts counters observe the handoff.
    Program p = loopProgram(8);
    StubMachine m(p);
    RetireUnit retire(RetireEnv{m.cfg, m.window, m.oracle, m.fill,
                                m.issue, m.ctrl});

    // Fabricate completed in-flight instructions matching the
    // committed path, exactly as fetch+issue would have left them —
    // four loop iterations' worth (four conditional branches).
    const std::size_t kInsts = 14;
    const std::size_t n = m.oracle.ensure(kInsts);
    ASSERT_GE(n, kInsts);
    for (std::size_t i = 0; i < kInsts; ++i) {
        const ExecRecord &rec = m.oracle.at(i);
        DynInstPtr di = windowInst(i + 1, rec.pc);
        di->inst = rec.inst;
        di->archInst = rec.inst;
        di->nextPc = rec.nextPc;
        di->taken = rec.taken;
        di->phase = InstPhase::Complete;
        di->completeCycle = 4;
        if (i == 1)
            di->moveMarked = true;  // dynamic-optimization accounting
        m.window.insts.push_back(di);
    }
    m.oracle.consume(kInsts);

    // Not complete yet at cycle 3: nothing may retire.
    retire.tick(3);
    EXPECT_EQ(retire.retired(), 0u);

    retire.tick(4);
    EXPECT_EQ(retire.retired(), kInsts);
    EXPECT_TRUE(m.window.empty());
    EXPECT_EQ(retire.lastRetireCycle(), 4u);
    EXPECT_EQ(retire.stats().counterValue("dyn_moves"), 1u);

    // The fill unit collected the committed stream and closed at
    // least the first loop body into a segment.
    stats::Group g("ut");
    m.fill.regStats(g);
    EXPECT_GT(g.counterValue("fill.segments"), 0u);
    EXPECT_GT(g.counterValue("fill.insts"), 0u);
}

TEST(RetireUnit, InactiveHeadBlocksRetirement)
{
    Program p = straightProgram();
    StubMachine m(p);
    RetireUnit retire(RetireEnv{m.cfg, m.window, m.oracle, m.fill,
                                m.issue, m.ctrl});

    DynInstPtr di = windowInst(1, p.entry);
    di->phase = InstPhase::Complete;
    di->completeCycle = 0;
    di->inactive = true;  // not yet activated by its branch
    m.window.insts.push_back(di);

    retire.tick(10);
    EXPECT_EQ(retire.retired(), 0u);
    EXPECT_FALSE(m.window.empty());
}

// --------------------------------------------------------------------
// StagePolicy: the composition root honors stage substitution
// --------------------------------------------------------------------

struct CountingRetire : RetireUnit
{
    explicit CountingRetire(const RetireEnv &env) : RetireUnit(env) {}

    void
    tick(Cycle now) override
    {
        ++ticks;
        RetireUnit::tick(now);
    }

    Cycle ticks = 0;
};

TEST(StagePolicy, SubstituteStageIsTimingTransparent)
{
    Program p = loopProgram(300);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());

    SimResult base = simulate(p, cfg);

    CountingRetire *counting = nullptr;
    StagePolicy policy;
    policy.makeRetire = [&](const RetireEnv &env) {
        auto stage = std::make_unique<CountingRetire>(env);
        counting = stage.get();
        return stage;
    };
    Processor proc(p, cfg, policy);
    SimResult sub = proc.run();

    ASSERT_NE(counting, nullptr);
    // The processor skips quiescent cycles, so the stage ticks at
    // most once per simulated cycle — but substitution must not
    // change the cycle count or any architectural outcome.
    EXPECT_GT(counting->ticks, 0u);
    EXPECT_LE(counting->ticks, sub.cycles);
    EXPECT_EQ(sub.cycles, base.cycles);      // changed nothing
    EXPECT_EQ(sub.retired, base.retired);
    EXPECT_EQ(sub.mispredicts, base.mispredicts);
}

} // namespace
} // namespace tcfill
