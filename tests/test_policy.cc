/**
 * @file
 * Fill pass-selection policy tests (DESIGN.md §16): pass-mask helper
 * round trips, PassPipeline equivalence with the legacy free-function
 * dispatch for every mask, decision-window accounting, direct unit
 * tests of the phase/feedback/oracle decision machinery, online
 * phase-tracker labeling, and sim-level contracts — uniform-mask
 * oracle runs bit-identical to the equivalent static configuration
 * across the full 32-combo optimization matrix, and adaptive-policy
 * determinism across thread counts and record/replay.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "fill/passes.hh"
#include "fill/policy.hh"
#include "sim/processor.hh"
#include "sim/runner.hh"
#include "tracefile/replay.hh"
#include "tracefile/trace_io.hh"
#include "workloads/suite.hh"

namespace tcfill
{
namespace
{

constexpr InstSeqNum kTestInsts = 20'000;

// --------------------------------------------------------------------
// Pass-mask helpers
// --------------------------------------------------------------------

TEST(PassMask, OptsRoundTripAllCombos)
{
    for (unsigned m = 0; m <= kPassMaskEvery; ++m) {
        const PassMask mask = static_cast<PassMask>(m);
        const FillOptimizations opts = optsFromPassMask(mask);
        EXPECT_EQ(passMaskFromOpts(opts), mask);
        EXPECT_EQ(parsePassMask(passMaskName(mask)), mask)
            << "name '" << passMaskName(mask) << "'";
        EXPECT_EQ(parsePassMask(std::to_string(m)), mask);
    }
}

TEST(PassMask, NamedConfigurations)
{
    EXPECT_EQ(passMaskFromOpts(FillOptimizations::all()), kPassMaskAll);
    EXPECT_EQ(passMaskFromOpts(FillOptimizations::extended()),
              kPassMaskExtended);
    EXPECT_EQ(passMaskFromOpts(FillOptimizations::none()), kPassMaskNone);
    EXPECT_EQ(passMaskName(kPassMaskAll), "all");
    EXPECT_EQ(passMaskName(kPassMaskExtended), "extended");
    EXPECT_EQ(passMaskName(kPassMaskNone), "none");
    EXPECT_EQ(passMaskName(kPassMarkMoves | kPassPlacement),
              "moves+placement");
}

TEST(PassMask, OptsFromMaskPreservesReassocBase)
{
    FillOptimizations base;
    base.reassocOptions.crossBlockOnly = false;
    base.reassocOptions.foldMemDisplacement = false;
    const FillOptimizations opts = optsFromPassMask(kPassMaskAll, base);
    EXPECT_FALSE(opts.reassocOptions.crossBlockOnly);
    EXPECT_FALSE(opts.reassocOptions.foldMemDisplacement);
    EXPECT_TRUE(opts.placement);
}

TEST(PassMask, CandidateMaskDerivation)
{
    using V = std::vector<PassMask>;
    EXPECT_EQ(policyCandidateMasks(kPassMaskAll),
              (V{kPassMaskAll,
                 static_cast<PassMask>(kPassMaskAll & ~kPassPlacement),
                 kPassPlacement, kPassMaskNone}));
    EXPECT_EQ(policyCandidateMasks(kPassPlacement),
              (V{kPassPlacement, kPassMaskNone}));
    EXPECT_EQ(policyCandidateMasks(kPassMaskNone), (V{kPassMaskNone}));
    // Non-placement masks collapse the placement-only candidate away.
    const PassMask scalar =
        static_cast<PassMask>(kPassMaskAll & ~kPassPlacement);
    EXPECT_EQ(policyCandidateMasks(scalar), (V{scalar, kPassMaskNone}));
}

// --------------------------------------------------------------------
// PassPipeline vs. the legacy free-function dispatch
// --------------------------------------------------------------------

/** Append an instruction to a segment with synthetic PC/region. */
TraceInst &
append(TraceSegment &seg, Instruction in, unsigned cf_region = 0)
{
    TraceInst ti;
    ti.inst = in;
    ti.pc = 0x400000 + seg.size() * 4;
    ti.origIdx = static_cast<std::uint8_t>(seg.size());
    ti.slot = ti.origIdx;
    ti.cfRegion = static_cast<std::uint8_t>(cf_region);
    ti.blockNum = static_cast<std::uint8_t>(cf_region & 3);
    seg.insts.push_back(ti);
    return seg.insts.back();
}

/** Random instruction mix covering every pass's trigger patterns. */
Instruction
randomInst(Random &rng)
{
    Instruction in;
    auto reg = [&rng]() {
        return static_cast<RegIndex>(rng.below(12) + 1);
    };
    switch (rng.below(10)) {
      case 0: case 1: case 2:
        in.op = Op::ADDI;
        in.dest = reg();
        in.src1 = rng.percent(20) ? kRegZero : reg();
        in.imm = static_cast<std::int32_t>(rng.range(-64, 64)) *
                 (rng.percent(10) ? 0 : 1);
        break;
      case 3:
        in.op = Op::SLLI;
        in.dest = reg();
        in.src1 = reg();
        in.shamt = static_cast<std::uint8_t>(rng.below(5));
        break;
      case 4:
        in.op = Op::ADD;
        in.dest = reg();
        in.src1 = reg();
        in.src2 = rng.percent(25) ? kRegZero : reg();
        break;
      case 5:
        in.op = Op::LW;
        in.dest = reg();
        in.src1 = reg();
        in.imm = static_cast<std::int32_t>(rng.range(-32, 32)) * 4;
        break;
      case 6:
        in.op = Op::LWX;
        in.dest = reg();
        in.src1 = reg();
        in.src2 = reg();
        break;
      case 7:
        in.op = Op::SW;
        in.src1 = reg();
        in.src3 = reg();
        in.imm = static_cast<std::int32_t>(rng.range(-32, 32)) * 4;
        break;
      case 8:
        in.op = rng.percent(50) ? Op::BEQ : Op::BNE;
        in.src1 = reg();
        in.src2 = reg();
        in.imm = 4;
        break;
      default:
        in.op = rng.percent(50) ? Op::XOR : Op::SUB;
        in.dest = reg();
        in.src1 = reg();
        in.src2 = reg();
        break;
    }
    return in;
}

TraceSegment
randomSegment(Random &rng)
{
    TraceSegment seg;
    unsigned region = 0;
    const unsigned n = 4 + static_cast<unsigned>(rng.below(13));
    for (unsigned i = 0; i < n; ++i) {
        Instruction in = randomInst(rng);
        append(seg, in, region);
        if (in.isControl() || rng.percent(20))
            ++region;
    }
    return seg;
}

void
expectSameSegment(const TraceSegment &a, const TraceSegment &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("inst " + std::to_string(i));
        const TraceInst &x = a.insts[i];
        const TraceInst &y = b.insts[i];
        EXPECT_EQ(x.inst, y.inst);
        EXPECT_EQ(x.pc, y.pc);
        for (int s = 0; s < 3; ++s)
            EXPECT_EQ(x.srcDep[s], y.srcDep[s]);
        EXPECT_EQ(x.liveOut, y.liveOut);
        EXPECT_EQ(x.isMove, y.isMove);
        EXPECT_EQ(x.moveSrc, y.moveSrc);
        EXPECT_EQ(x.moveSrcDep, y.moveSrcDep);
        EXPECT_EQ(x.scaledSrcIdx, y.scaledSrcIdx);
        EXPECT_EQ(x.scaleAmt, y.scaleAmt);
        EXPECT_EQ(x.slot, y.slot);
        EXPECT_EQ(x.deadElided, y.deadElided);
        EXPECT_EQ(x.reassociated, y.reassociated);
    }
}

class PipelineEquivalence : public ::testing::TestWithParam<unsigned>
{
};

/**
 * For every mask, PassPipeline::run must perform exactly the call
 * sequence the pre-policy boolean dispatch performed — same segment
 * rewrites, same placement-hint evolution. This is the unit-level
 * form of the golden-fixture byte-identity contract.
 */
TEST_P(PipelineEquivalence, MatchesLegacyDispatchForEveryMask)
{
    for (unsigned m = 0; m <= kPassMaskEvery; ++m) {
        const PassMask mask = static_cast<PassMask>(m);
        Random rng(GetParam() * 2654435761u + m * 97 + 5);

        FillOptimizations base;
        base.reassocOptions.crossBlockOnly = rng.percent(50);
        base.reassocOptions.foldMemDisplacement = rng.percent(50);
        const FillOptimizations opts = optsFromPassMask(mask, base);

        TraceSegment seg = randomSegment(rng);
        TraceSegment legacy = seg;

        // The pre-refactor FillUnit::finalize dispatch, verbatim.
        PlacementHints legacy_hints;
        markDependencies(legacy);
        if (opts.markMoves)
            markMoves(legacy);
        if (opts.reassociate)
            reassociate(legacy, opts.reassocOptions);
        if (opts.scaledAdds)
            createScaledAdds(legacy);
        if (opts.deadCodeElim)
            eliminateDeadWrites(legacy);
        if (opts.placement)
            placeInstructions(legacy, kSegmentMaxInsts, 4, &legacy_hints);
        else
            placeIdentity(legacy);

        PassPipeline pipe(opts.reassocOptions);
        PlacementHints hints;
        pipe.run(seg, mask, &hints);

        SCOPED_TRACE("mask " + std::to_string(m) + " seed " +
                     std::to_string(GetParam()));
        expectSameSegment(legacy, seg);
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            EXPECT_EQ(hints.cluster[r], legacy_hints.cluster[r])
                << "hint r" << r;
        EXPECT_TRUE(depsConsistent(seg));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineEquivalence,
                         ::testing::Range(0u, 20u));

// --------------------------------------------------------------------
// Decision-window accounting
// --------------------------------------------------------------------

/** Exposes the windowing machinery's measurements to assertions. */
class CapturePolicy final : public WindowedFillPolicy
{
  public:
    struct Win
    {
        int phase;
        double ipc;
        double bypassFrac;
    };

    CapturePolicy(const FillPolicyParams &params, bool track)
        : WindowedFillPolicy("capture", kPassMaskAll, params, track)
    {}

    void
    onWindow(int phase, double ipc, double bypass_frac) override
    {
        wins.push_back({phase, ipc, bypass_frac});
    }

    std::vector<Win> wins;
};

TEST(WindowedPolicy, WindowIpcAndBypassFraction)
{
    FillPolicyParams params;
    params.windowInsts = 100;
    CapturePolicy p(params, /*track=*/false);

    // First window: two retires per cycle (cycles 0..49), the first
    // 25 commits bypass-delayed.
    for (unsigned i = 0; i < 100; ++i) {
        EXPECT_EQ(p.windows(), 0u);
        p.onRetire(0x1000 + i * 4, (i % 10) == 9, /*now=*/i / 2, i < 25);
    }
    ASSERT_EQ(p.wins.size(), 1u);
    EXPECT_EQ(p.windows(), 1u);
    EXPECT_EQ(p.wins[0].phase, -1);    // tracking off
    // Boundary convention: the window owns [0, 50) -> 100/50.
    EXPECT_DOUBLE_EQ(p.wins[0].ipc, 2.0);
    EXPECT_DOUBLE_EQ(p.wins[0].bypassFrac, 0.25);

    // Second window: one retire per cycle starting where the first
    // window's boundary left off (cycle 50), none bypass-delayed.
    for (unsigned i = 0; i < 100; ++i)
        p.onRetire(0x2000 + i * 4, false, 50 + i, false);
    ASSERT_EQ(p.wins.size(), 2u);
    EXPECT_DOUBLE_EQ(p.wins[1].ipc, 1.0);
    EXPECT_DOUBLE_EQ(p.wins[1].bypassFrac, 0.0);
}

TEST(WindowedPolicy, SummaryAggregatesWindows)
{
    FillPolicyParams params;
    params.windowInsts = 50;
    CapturePolicy p(params, /*track=*/false);
    for (unsigned i = 0; i < 150; ++i)
        p.onRetire(0x1000 + i * 4, false, i, false);

    PolicySummary sum;
    p.summarize(sum);
    EXPECT_EQ(sum.kind, "capture");
    EXPECT_EQ(sum.windows, 3u);
    ASSERT_EQ(sum.phases.size(), 1u);
    EXPECT_EQ(sum.phases[0].phase, -1);
    EXPECT_EQ(sum.phases[0].windows, 3u);
    EXPECT_EQ(sum.phases[0].insts, 150u);
    EXPECT_EQ(sum.phases[0].cycles, 150u);
}

// --------------------------------------------------------------------
// StaticPolicy
// --------------------------------------------------------------------

TEST(StaticFillPolicy, FixedMaskNoSignals)
{
    FillPolicyParams params;    // kind = Static
    auto p = makeFillPolicy(params, FillOptimizations::all());
    EXPECT_STREQ(p->kind(), "static");
    EXPECT_FALSE(p->wantsRetireSignals());
    EXPECT_EQ(p->mask(), kPassMaskAll);
    EXPECT_EQ(*p->maskPtr(), kPassMaskAll);

    PolicySummary sum;
    p->summarize(sum);
    EXPECT_EQ(sum.kind, "static");
    EXPECT_EQ(sum.finalMask, kPassMaskAll);
    EXPECT_EQ(sum.windows, 0u);
    EXPECT_EQ(sum.switches, 0u);
    EXPECT_TRUE(sum.phases.empty());
}

// --------------------------------------------------------------------
// PhasePolicy decision machinery
// --------------------------------------------------------------------

TEST(PhaseFillPolicy, ExploreThenExploitPicksBestCandidate)
{
    FillPolicyParams params;
    params.kind = FillPolicyKind::Phase;
    PhasePolicy p(kPassMaskAll, params);
    const std::vector<PassMask> &cand = p.candidates();
    ASSERT_EQ(cand.size(), 4u);
    EXPECT_EQ(p.mask(), kPassMaskAll);

    // Explore: one window per candidate; the second (all-but-
    // placement) measures best.
    p.onWindow(0, 1.0, 0.0);
    EXPECT_EQ(p.mask(), cand[1]);
    p.onWindow(0, 1.5, 0.0);
    EXPECT_EQ(p.mask(), cand[2]);
    p.onWindow(0, 0.5, 0.0);
    EXPECT_EQ(p.mask(), cand[3]);
    p.onWindow(0, 0.8, 0.0);
    // Exploit: locked to the best-IPC candidate.
    EXPECT_EQ(p.mask(), cand[1]);
    p.onWindow(0, 9.9, 0.0);
    EXPECT_EQ(p.mask(), cand[1]);
}

TEST(PhaseFillPolicy, TransitionWindowNotCredited)
{
    FillPolicyParams params;
    params.kind = FillPolicyKind::Phase;
    PhasePolicy p(kPassMaskAll, params);
    const std::vector<PassMask> &cand = p.candidates();

    // Settle phase 0 on candidate 1 (as above).
    p.onWindow(0, 1.0, 0.0);
    p.onWindow(0, 1.5, 0.0);
    p.onWindow(0, 0.5, 0.0);
    p.onWindow(0, 0.8, 0.0);
    ASSERT_EQ(p.mask(), cand[1]);

    // First window of phase 1 ran under phase 0's mask: its (high)
    // IPC must not be credited to phase 1's first candidate.
    p.onWindow(1, 9.9, 0.0);
    EXPECT_EQ(p.mask(), cand[0]);    // retry candidate 0 properly
    p.onWindow(1, 0.1, 0.0);         // measured under cand[0] now
    EXPECT_EQ(p.mask(), cand[1]);
    p.onWindow(1, 0.2, 0.0);
    p.onWindow(1, 0.05, 0.0);
    p.onWindow(1, 0.06, 0.0);
    // Best for phase 1 is cand[1] at 0.2 — not the discarded 9.9.
    EXPECT_EQ(p.mask(), cand[1]);

    // Phase 0's settled choice is remembered independently.
    p.onWindow(0, 0.3, 0.0);
    EXPECT_EQ(p.mask(), cand[1]);
}

TEST(PhaseFillPolicy, TiesPreferEarlierCandidate)
{
    FillPolicyParams params;
    params.kind = FillPolicyKind::Phase;
    PhasePolicy p(kPassMaskAll, params);
    const std::vector<PassMask> &cand = p.candidates();
    // All candidates measure identical IPC: the first one probed wins
    // (strict-improvement comparison), keeping the configured mask.
    p.onWindow(0, 1.0, 0.0);
    p.onWindow(0, 1.0, 0.0);
    p.onWindow(0, 1.0, 0.0);
    p.onWindow(0, 1.0, 0.0);
    EXPECT_EQ(p.mask(), cand[0]);
    EXPECT_EQ(p.mask(), kPassMaskAll);
}

// --------------------------------------------------------------------
// FeedbackPolicy decision machinery
// --------------------------------------------------------------------

TEST(FeedbackFillPolicy, TrialAdoptionNeedsHysteresisMargin)
{
    FillPolicyParams params;
    params.kind = FillPolicyKind::Feedback;
    params.hysteresis = 0.10;
    FeedbackPolicy f(kPassMaskAll, params);
    const PassMask no_place =
        static_cast<PassMask>(kPassMaskAll & ~kPassPlacement);

    // Stable windows build the EWMA baseline; no trial before
    // kTrialEvery windows have passed.
    for (unsigned i = 0; i < FeedbackPolicy::kTrialEvery - 1; ++i) {
        f.onWindow(-1, 1.0, 0.0);
        EXPECT_FALSE(f.inTrial());
        EXPECT_EQ(f.mask(), kPassMaskAll);
    }
    EXPECT_DOUBLE_EQ(f.baselineIpc(), 1.0);

    // Window kTrialEvery launches a trial of the next candidate.
    f.onWindow(-1, 1.0, 0.0);
    EXPECT_TRUE(f.inTrial());
    EXPECT_EQ(f.mask(), no_place);

    // +5% is inside the 10% hysteresis band: revert.
    f.onWindow(-1, 1.05, 0.0);
    EXPECT_FALSE(f.inTrial());
    EXPECT_EQ(f.mask(), kPassMaskAll);
    EXPECT_DOUBLE_EQ(f.baselineIpc(), 1.0);

    // Build up to the next trial (rotation continues: placement-only).
    for (unsigned i = 0; i < FeedbackPolicy::kTrialEvery; ++i)
        f.onWindow(-1, 1.0, 0.0);
    EXPECT_TRUE(f.inTrial());
    EXPECT_EQ(f.mask(), kPassPlacement);

    // +30% clears the margin: adopt the trial mask and re-baseline.
    f.onWindow(-1, 1.3, 0.0);
    EXPECT_FALSE(f.inTrial());
    EXPECT_EQ(f.mask(), kPassPlacement);
    EXPECT_DOUBLE_EQ(f.baselineIpc(), 1.3);
}

TEST(FeedbackFillPolicy, HighBypassFractionIndictsPlacement)
{
    FillPolicyParams params;
    params.kind = FillPolicyKind::Feedback;
    FeedbackPolicy f(kPassMaskAll, params);

    for (unsigned i = 0; i < FeedbackPolicy::kTrialEvery - 1; ++i)
        f.onWindow(-1, 1.0, 0.0);
    // The trial-launching window sees a high bypass-delay fraction:
    // the trial must drop placement rather than rotate.
    f.onWindow(-1, 1.0, FeedbackPolicy::kBypassHigh + 0.1);
    EXPECT_TRUE(f.inTrial());
    EXPECT_EQ(f.mask(),
              static_cast<PassMask>(kPassMaskAll & ~kPassPlacement));
}

// --------------------------------------------------------------------
// OraclePolicy map handling
// --------------------------------------------------------------------

TEST(OracleFillPolicy, MapParsingAndPhaseLookup)
{
    FillPolicyParams params;
    params.kind = FillPolicyKind::Oracle;
    params.oracleMap = "0=all,2=none,*=moves";
    OraclePolicy o(kPassMaskAll, params);

    EXPECT_EQ(o.maskFor(0), kPassMaskAll);
    EXPECT_EQ(o.maskFor(2), kPassMaskNone);
    EXPECT_EQ(o.maskFor(1), kPassMarkMoves);    // falls to '*'
    EXPECT_EQ(o.maskFor(7), kPassMarkMoves);

    // Initial mask is the phase-0 prediction, not a runtime switch.
    EXPECT_EQ(o.mask(), kPassMaskAll);
    EXPECT_EQ(o.switches(), 0u);

    o.onWindow(2, 1.0, 0.0);
    EXPECT_EQ(o.mask(), kPassMaskNone);
    EXPECT_EQ(o.switches(), 1u);
    o.onWindow(0, 1.0, 0.0);
    EXPECT_EQ(o.mask(), kPassMaskAll);
    EXPECT_EQ(o.switches(), 2u);
}

TEST(OracleFillPolicy, UniformMapNeverSwitches)
{
    FillPolicyParams params;
    params.kind = FillPolicyKind::Oracle;
    params.oracleMap = "*=7";
    OraclePolicy o(kPassMaskAll, params);
    EXPECT_EQ(o.mask(), 7u);
    for (int ph : {0, 1, 2, 0, 3})
        o.onWindow(ph, 1.0, 0.0);
    EXPECT_EQ(o.mask(), 7u);
    EXPECT_EQ(o.switches(), 0u);
}

TEST(OracleFillPolicyDeathTest, RejectsMalformedMaps)
{
    FillPolicyParams params;
    params.kind = FillPolicyKind::Oracle;
    EXPECT_DEATH(makeFillPolicy(params, FillOptimizations::all()),
                 "needs --policy-map");
    params.oracleMap = "nokey";
    EXPECT_DEATH(makeFillPolicy(params, FillOptimizations::all()),
                 "not KEY=MASK");
    params.oracleMap = "x=all";
    EXPECT_DEATH(makeFillPolicy(params, FillOptimizations::all()),
                 "not a phase id");
    params.oracleMap = "0=bogus";
    EXPECT_DEATH(makeFillPolicy(params, FillOptimizations::all()),
                 "bogus");
}

// --------------------------------------------------------------------
// Online phase tracker
// --------------------------------------------------------------------

/** Feed one window of a synthetic loop nest with blocks at @p base. */
void
feedPattern(OnlinePhaseTracker &t, Addr base)
{
    for (unsigned i = 0; i < 1000; ++i)
        t.note(base + (i % 40) * 4, (i % 10) == 9);
}

TEST(PhaseTracker, RecurringPatternsKeepTheirLabel)
{
    OnlinePhaseTracker t(8, 0.05);
    feedPattern(t, 0x1000);
    EXPECT_EQ(t.closeWindow(1000), 0);
    feedPattern(t, 0x1000);
    EXPECT_EQ(t.closeWindow(1000), 0);
    feedPattern(t, 0x80000);
    EXPECT_EQ(t.closeWindow(1000), 1);
    feedPattern(t, 0x1000);
    EXPECT_EQ(t.closeWindow(1000), 0);
    EXPECT_EQ(t.phases(), 2u);
}

TEST(PhaseTracker, PhaseCapFallsBackToNearest)
{
    OnlinePhaseTracker t(1, 1e-6);
    feedPattern(t, 0x1000);
    EXPECT_EQ(t.closeWindow(1000), 0);
    // A very different window still labels 0 once the cap is hit.
    feedPattern(t, 0x90000);
    EXPECT_EQ(t.closeWindow(1000), 0);
    EXPECT_EQ(t.phases(), 1u);
}

// --------------------------------------------------------------------
// Sim-level contracts
// --------------------------------------------------------------------

/**
 * Deterministic timing fields two runs of the same point must share
 * (mirrors test_runner.cc's expectIdentical).
 */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.tcHits, b.tcHits);
    EXPECT_EQ(a.tcMisses, b.tcMisses);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.inactiveRescues, b.inactiveRescues);
    EXPECT_EQ(a.mispredictStallCycles, b.mispredictStallCycles);
    EXPECT_EQ(a.segmentsBuilt, b.segmentsBuilt);
    EXPECT_EQ(a.dynMoves, b.dynMoves);
    EXPECT_EQ(a.dynReassoc, b.dynReassoc);
    EXPECT_EQ(a.dynScaled, b.dynScaled);
    EXPECT_EQ(a.dynElided, b.dynElided);
    EXPECT_EQ(a.dynMoveIdioms, b.dynMoveIdioms);
    EXPECT_EQ(a.bypassDelayed, b.bypassDelayed);
}

void
expectSameSummary(const PolicySummary &a, const PolicySummary &b)
{
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.finalMask, b.finalMask);
    EXPECT_EQ(a.windows, b.windows);
    EXPECT_EQ(a.switches, b.switches);
    EXPECT_EQ(a.phasesSeen, b.phasesSeen);
    EXPECT_EQ(a.movesMarked, b.movesMarked);
    EXPECT_EQ(a.reassociations, b.reassociations);
    EXPECT_EQ(a.scaledAdds, b.scaledAdds);
    EXPECT_EQ(a.deadElided, b.deadElided);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
        SCOPED_TRACE("phase row " + std::to_string(i));
        EXPECT_EQ(a.phases[i].phase, b.phases[i].phase);
        EXPECT_EQ(a.phases[i].mask, b.phases[i].mask);
        EXPECT_EQ(a.phases[i].windows, b.phases[i].windows);
        EXPECT_EQ(a.phases[i].insts, b.phases[i].insts);
        EXPECT_EQ(a.phases[i].cycles, b.phases[i].cycles);
    }
}

SimConfig
policyCfg(FillPolicyKind kind, const std::string &name,
          InstSeqNum window = 2'000)
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.name = name;
    cfg.maxInsts = kTestInsts;
    cfg.fill.policy.kind = kind;
    cfg.fill.policy.windowInsts = window;
    return cfg;
}

/**
 * The seam's central identity: an oracle policy replaying a uniform
 * map must be cycle-identical to the static configuration with that
 * mask — for every one of the 32 optimization combinations. This is
 * what makes per-phase best maps composable from uniform runs.
 */
TEST(PolicySim, UniformOracleMatchesStaticForEveryCombo)
{
    const char *names[] = {"compress", "li", "m88ksim"};
    SimRunner pool(8);

    std::vector<std::shared_future<SimResult>> sf, of;
    for (const char *name : names) {
        for (unsigned m = 0; m <= kPassMaskEvery; ++m) {
            const FillOptimizations opts =
                optsFromPassMask(static_cast<PassMask>(m));
            SimConfig s = SimConfig::withOpts(opts);
            s.name = "static";
            s.maxInsts = kTestInsts;
            SimConfig o = s;
            o.name = "oracle";
            o.fill.policy.kind = FillPolicyKind::Oracle;
            o.fill.policy.windowInsts = 5'000;
            o.fill.policy.oracleMap = "*=" + std::to_string(m);
            sf.push_back(pool.submit(name, s));
            of.push_back(pool.submit(name, o));
        }
    }

    std::size_t i = 0;
    for (const char *name : names) {
        for (unsigned m = 0; m <= kPassMaskEvery; ++m, ++i) {
            SCOPED_TRACE(std::string(name) + " mask " + std::to_string(m));
            const SimResult s = sf[i].get();
            const SimResult o = of[i].get();
            expectIdentical(s, o);
            EXPECT_EQ(s.policy, nullptr);
            ASSERT_NE(o.policy, nullptr);
            EXPECT_EQ(o.policy->kind, "oracle");
            EXPECT_EQ(o.policy->finalMask, m);
            EXPECT_EQ(o.policy->switches, 0u);
            EXPECT_EQ(o.policy->windows, kTestInsts / 5'000);
        }
    }
}

TEST(PolicySim, PhaseDeterministicAcrossThreadCounts)
{
    for (const char *name : {"compress", "li"}) {
        for (FillPolicyKind kind :
             {FillPolicyKind::Phase, FillPolicyKind::Feedback}) {
            const SimConfig cfg =
                policyCfg(kind, fillPolicyKindName(kind));
            SimRunner serial(1);
            SimRunner parallel(8);
            const SimResult a = serial.run(name, cfg);
            const SimResult b = parallel.run(name, cfg);
            SCOPED_TRACE(std::string(name) + "/" + cfg.name);
            expectIdentical(a, b);
            ASSERT_NE(a.policy, nullptr);
            ASSERT_NE(b.policy, nullptr);
            expectSameSummary(*a.policy, *b.policy);
            EXPECT_EQ(a.policy->kind, fillPolicyKindName(kind));
            EXPECT_GT(a.policy->windows, 0u);
        }
    }
}

/** Capture @p workload's committed stream into a string. */
std::string
captureWorkload(const std::string &workload, const SimConfig &cfg)
{
    std::ostringstream os;
    const Program prog = workloads::build(workload, 1);
    tracefile::TraceMeta meta;
    meta.workload = prog.name;
    meta.config = cfg.name;
    meta.entryPc = prog.entry;
    meta.maxInsts = cfg.maxInsts;
    Executor exec(prog);
    tracefile::TraceWriter writer(os, meta);
    tracefile::RecordingSource source(exec, writer);
    Processor proc(source, prog.name, prog.entry, cfg);
    proc.run();
    writer.finish();
    return os.str();
}

/**
 * Adaptive policies are deterministic functions of the committed
 * stream and cycle counts, so a replayed trace reproduces not just
 * the timing but the full decision record.
 */
TEST(PolicySim, AdaptivePoliciesIdenticalUnderReplay)
{
    for (FillPolicyKind kind :
         {FillPolicyKind::Phase, FillPolicyKind::Feedback}) {
        const SimConfig cfg = policyCfg(kind, fillPolicyKindName(kind));
        const Program prog = workloads::build("compress", 1);
        Processor live(prog, cfg);
        const SimResult live_res = live.run();

        const std::string bytes = captureWorkload("compress", cfg);
        std::istringstream is(bytes);
        tracefile::ReplayExecutor rx(is, "compress");
        Processor replay(rx, rx.meta().workload, rx.meta().entryPc, cfg);
        const SimResult replay_res = replay.run();

        SCOPED_TRACE(cfg.name);
        expectIdentical(live_res, replay_res);
        ASSERT_NE(live_res.policy, nullptr);
        ASSERT_NE(replay_res.policy, nullptr);
        expectSameSummary(*live_res.policy, *replay_res.policy);
    }
}

} // namespace
} // namespace tcfill
