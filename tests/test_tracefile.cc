/**
 * @file
 * Trace capture/replay and BBV sampling tests: format primitives
 * (varint/zigzag/CRC), writer/reader round trips (including fuzzed
 * random programs), structural error handling (truncation, CRC
 * mismatch, version skew), record-vs-replay timing determinism, BBV
 * profiler equivalence between the functional path and the retire
 * commit hook, simpoint selection properties, the sampled-IPC error
 * bound, and content-keyed replay result caching.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asm/builder.hh"
#include "common/random.hh"
#include "sim/processor.hh"
#include "sim/runner.hh"
#include "sim/stats_io.hh"
#include "tracefile/bbv.hh"
#include "tracefile/format.hh"
#include "tracefile/replay.hh"
#include "tracefile/sample.hh"
#include "tracefile/trace_io.hh"
#include "workloads/suite.hh"

namespace tcfill::tracefile
{
namespace
{

constexpr InstSeqNum kTestInsts = 10'000;

SimConfig
testConfig(InstSeqNum max_insts = kTestInsts)
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.name = "test";
    cfg.maxInsts = max_insts;
    return cfg;
}

void
expectSameRecord(const ExecRecord &a, const ExecRecord &b)
{
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.nextPc, b.nextPc);
    EXPECT_EQ(a.inst, b.inst);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.effAddr, b.effAddr);
}

void
expectSameTiming(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.tcHits, b.tcHits);
    EXPECT_EQ(a.tcMisses, b.tcMisses);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.inactiveRescues, b.inactiveRescues);
    EXPECT_EQ(a.mispredictStallCycles, b.mispredictStallCycles);
    EXPECT_EQ(a.segmentsBuilt, b.segmentsBuilt);
    EXPECT_EQ(a.dynMoves, b.dynMoves);
    EXPECT_EQ(a.dynReassoc, b.dynReassoc);
    EXPECT_EQ(a.dynScaled, b.dynScaled);
    EXPECT_EQ(a.dynElided, b.dynElided);
    EXPECT_EQ(a.dynMoveIdioms, b.dynMoveIdioms);
    EXPECT_EQ(a.bypassDelayed, b.bypassDelayed);
}

/** Capture @p workload's committed stream into a string. */
std::string
captureWorkload(const std::string &workload, const SimConfig &cfg)
{
    std::ostringstream os;
    const Program prog = workloads::build(workload, 1);
    TraceMeta meta;
    meta.workload = prog.name;
    meta.config = cfg.name;
    meta.entryPc = prog.entry;
    meta.maxInsts = cfg.maxInsts;
    Executor exec(prog);
    TraceWriter writer(os, meta);
    RecordingSource source(exec, writer);
    Processor proc(source, prog.name, prog.entry, cfg);
    proc.run();
    writer.finish();
    return os.str();
}

// --------------------------------------------------------------------
// Format primitives
// --------------------------------------------------------------------

TEST(Format, VarintRoundtrip)
{
    const std::uint64_t cases[] = {
        0, 1, 127, 128, 129, 16383, 16384, 1u << 20,
        0xdeadbeefull, ~0ull, ~0ull - 1,
    };
    std::string buf;
    for (std::uint64_t v : cases)
        putVarint(buf, v);
    std::size_t pos = 0;
    for (std::uint64_t v : cases) {
        std::uint64_t got = 0;
        ASSERT_TRUE(getVarint(buf, pos, got));
        EXPECT_EQ(got, v);
    }
    EXPECT_EQ(pos, buf.size());

    // Truncation is reported, not read past.
    std::string cut = buf.substr(0, buf.size() - 1);
    pos = 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 10; ++i) {
        if (!getVarint(cut, pos, v))
            break;
    }
    EXPECT_LE(pos, cut.size());
}

TEST(Format, ZigzagRoundtrip)
{
    const std::int64_t cases[] = {
        0, 1, -1, 63, -64, 64, -65, 4, -4,
        std::numeric_limits<std::int32_t>::max(),
        std::numeric_limits<std::int32_t>::min(),
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min(),
    };
    for (std::int64_t v : cases) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
        std::string buf;
        putZigzag(buf, v);
        std::size_t pos = 0;
        std::int64_t got = 0;
        ASSERT_TRUE(getZigzag(buf, pos, got));
        EXPECT_EQ(got, v);
    }
    // Small magnitudes pack into one byte (the common deltas).
    std::string one;
    putZigzag(one, -4);
    EXPECT_EQ(one.size(), 1u);
}

TEST(Format, Crc32KnownVector)
{
    // The canonical CRC-32/IEEE check value.
    const char *s = "123456789";
    EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
    EXPECT_EQ(crc32(s, 0), 0u);
    // Seed chaining splits a buffer anywhere.
    EXPECT_EQ(crc32(s + 4, 5, crc32(s, 4)), 0xCBF43926u);
}

// --------------------------------------------------------------------
// Writer / reader round trips
// --------------------------------------------------------------------

Program
countdownProgram(int iters)
{
    ProgramBuilder b("countdown");
    Addr arr = b.dataWords(std::vector<std::int32_t>(64, 7));
    b.li(1, iters);
    b.la(2, arr);
    Label top = b.newLabel();
    b.bind(top);
    b.lw(3, 2, 8);
    b.add(4, 3, 1);
    b.sw(4, 2, 12);
    b.addi(1, 1, -1);
    b.bgtz(1, top);
    b.halt();
    return b.finish();
}

TEST(TraceIo, RoundtripSmallProgram)
{
    const Program prog = countdownProgram(50);

    // Reference stream.
    std::vector<ExecRecord> ref;
    {
        Executor exec(prog);
        while (!exec.halted())
            ref.push_back(exec.step());
    }

    // Capture.
    std::ostringstream os;
    TraceMeta meta;
    meta.workload = prog.name;
    meta.config = "test";
    meta.entryPc = prog.entry;
    {
        Executor exec(prog);
        TraceWriter writer(os, meta);
        while (!exec.halted())
            writer.append(exec.step());
        writer.finish();
        EXPECT_EQ(writer.records(), ref.size());
    }

    // Read back.
    std::istringstream is(os.str());
    TraceReader reader(is);
    ASSERT_EQ(reader.error(), ReadStatus::Ok) << reader.errorDetail();
    EXPECT_EQ(reader.meta().workload, prog.name);
    EXPECT_EQ(reader.meta().config, "test");
    EXPECT_EQ(reader.meta().entryPc, prog.entry);
    ExecRecord rec;
    for (const ExecRecord &want : ref) {
        ASSERT_EQ(reader.next(rec), ReadStatus::Ok)
            << reader.errorDetail();
        expectSameRecord(rec, want);
    }
    EXPECT_EQ(reader.next(rec), ReadStatus::Eof);
    EXPECT_EQ(reader.totalRecords(), ref.size());
    // Exhausted readers stay exhausted.
    EXPECT_EQ(reader.next(rec), ReadStatus::Eof);
}

TEST(TraceIo, MultiFrameTrace)
{
    // > kFrameRecordCap records forces multiple frames.
    const Program prog = countdownProgram(2000);
    std::ostringstream os;
    TraceMeta meta;
    meta.entryPc = prog.entry;
    Executor exec(prog);
    TraceWriter writer(os, meta);
    while (!exec.halted())
        writer.append(exec.step());
    writer.finish();
    ASSERT_GT(writer.records(), kFrameRecordCap);

    std::istringstream is(os.str());
    TraceReader reader(is);
    ASSERT_EQ(reader.error(), ReadStatus::Ok);
    ExecRecord rec;
    InstSeqNum n = 0;
    while (reader.next(rec) == ReadStatus::Ok)
        ++n;
    EXPECT_EQ(reader.error(), ReadStatus::Eof);
    EXPECT_EQ(n, writer.records());
}

TEST(TraceIo, EmptyTrace)
{
    std::ostringstream os;
    TraceMeta meta;
    meta.workload = "empty";
    {
        TraceWriter writer(os, meta);
        writer.finish();
    }
    std::istringstream is(os.str());
    TraceReader reader(is);
    ASSERT_EQ(reader.error(), ReadStatus::Ok);
    EXPECT_EQ(reader.meta().workload, "empty");
    ExecRecord rec;
    EXPECT_EQ(reader.next(rec), ReadStatus::Eof);
    EXPECT_EQ(reader.totalRecords(), 0u);
}

TEST(TraceIo, CompressionIsEffective)
{
    // The delta/varint packing should land well under the ~37 bytes
    // an unpacked ExecRecord occupies in memory.
    const std::string bytes = captureWorkload("compress", testConfig());
    std::istringstream is(bytes);
    TraceReader reader(is);
    ASSERT_EQ(reader.error(), ReadStatus::Ok);
    ExecRecord rec;
    while (reader.next(rec) == ReadStatus::Ok) {
    }
    ASSERT_EQ(reader.error(), ReadStatus::Eof);
    const double per_record = static_cast<double>(bytes.size()) /
        static_cast<double>(reader.records());
    EXPECT_LT(per_record, 16.0);
}

// --------------------------------------------------------------------
// Structural error handling
// --------------------------------------------------------------------

/** A tiny valid trace plus its decomposition offsets. */
struct TraceImage
{
    std::string bytes;
    std::size_t headerEnd;  ///< offset just past the header CRC
};

TraceImage
smallImage()
{
    const Program prog = countdownProgram(10);
    std::ostringstream os;
    TraceMeta meta;
    meta.workload = prog.name;
    meta.entryPc = prog.entry;
    Executor exec(prog);
    TraceWriter writer(os, meta);
    while (!exec.halted())
        writer.append(exec.step());
    writer.finish();
    TraceImage img;
    img.bytes = os.str();
    // magic(8) + version(4) + len(4) + payload(len) + crc(4).
    const auto len =
        static_cast<std::uint32_t>(
            static_cast<std::uint8_t>(img.bytes[12])) |
        static_cast<std::uint32_t>(
            static_cast<std::uint8_t>(img.bytes[13])) << 8 |
        static_cast<std::uint32_t>(
            static_cast<std::uint8_t>(img.bytes[14])) << 16 |
        static_cast<std::uint32_t>(
            static_cast<std::uint8_t>(img.bytes[15])) << 24;
    img.headerEnd = 16 + len + 4;
    return img;
}

ReadStatus
drain(const std::string &bytes, std::string *detail = nullptr)
{
    std::istringstream is(bytes);
    TraceReader reader(is);
    ExecRecord rec;
    ReadStatus s = reader.error();
    while (s == ReadStatus::Ok)
        s = reader.next(rec);
    if (detail)
        *detail = reader.errorDetail();
    return s;
}

TEST(TraceErrors, CleanFileDrainsToEof)
{
    EXPECT_EQ(drain(smallImage().bytes), ReadStatus::Eof);
}

TEST(TraceErrors, TruncatedMidFrame)
{
    TraceImage img = smallImage();
    // Drop the end frame and half the record frame.
    std::string cut =
        img.bytes.substr(0, img.headerEnd +
                                (img.bytes.size() - img.headerEnd) / 2);
    EXPECT_EQ(drain(cut), ReadStatus::Truncated);
}

TEST(TraceErrors, MissingEndFrameIsTruncated)
{
    // Cut exactly at the end-frame boundary: all records are intact
    // but the terminator is gone — still flagged, never silent Eof.
    TraceImage img = smallImage();
    // End frame = tag + varint(total) + crc4; total < 128 here.
    std::string cut = img.bytes.substr(0, img.bytes.size() - 6);
    EXPECT_EQ(drain(cut), ReadStatus::Truncated);
}

TEST(TraceErrors, FrameCrcMismatch)
{
    TraceImage img = smallImage();
    // Flip a byte inside the record frame payload (skip the frame's
    // tag + two varints; any payload byte works).
    img.bytes[img.headerEnd + 8] ^= 0x40;
    std::string detail;
    EXPECT_EQ(drain(img.bytes, &detail), ReadStatus::CrcMismatch);
    EXPECT_NE(detail.find("CRC"), std::string::npos);
}

TEST(TraceErrors, HeaderCrcMismatch)
{
    TraceImage img = smallImage();
    img.bytes[17] ^= 0x01;  // inside the header payload
    EXPECT_EQ(drain(img.bytes), ReadStatus::CrcMismatch);
}

TEST(TraceErrors, VersionSkew)
{
    TraceImage img = smallImage();
    img.bytes[8] = 99;  // version u32 LE at offset 8
    std::string detail;
    EXPECT_EQ(drain(img.bytes, &detail), ReadStatus::BadVersion);
    EXPECT_NE(detail.find("v99"), std::string::npos);
}

TEST(TraceErrors, BadMagic)
{
    EXPECT_EQ(drain("definitely not a trace file"),
              ReadStatus::BadMagic);
    EXPECT_EQ(drain(""), ReadStatus::BadMagic);
    TraceImage img = smallImage();
    img.bytes[0] = 'X';
    EXPECT_EQ(drain(img.bytes), ReadStatus::BadMagic);
}

TEST(TraceErrors, UnknownFrameTag)
{
    TraceImage img = smallImage();
    img.bytes[img.headerEnd] = 0x7f;  // record frame tag position
    EXPECT_EQ(drain(img.bytes), ReadStatus::Malformed);
}

TEST(TraceErrors, StatusNamesAreStable)
{
    EXPECT_STREQ(readStatusName(ReadStatus::Ok), "ok");
    EXPECT_STREQ(readStatusName(ReadStatus::Eof), "eof");
    EXPECT_STREQ(readStatusName(ReadStatus::Truncated), "truncated");
    EXPECT_STREQ(readStatusName(ReadStatus::CrcMismatch),
                 "crc mismatch");
    EXPECT_STREQ(readStatusName(ReadStatus::BadVersion),
                 "version skew");
}

TEST(TraceErrorsDeathTest, ReplayExecutorFatalsOnCorruptTrace)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    TraceImage img = smallImage();
    img.bytes[img.headerEnd + 8] ^= 0x40;
    EXPECT_EXIT(
        {
            std::istringstream is(img.bytes);
            ReplayExecutor rx(is, "corrupt.tctrace");
            while (!rx.halted())
                rx.step();
        },
        ::testing::ExitedWithCode(1), "crc mismatch");
}

// --------------------------------------------------------------------
// Record / replay timing determinism
// --------------------------------------------------------------------

TEST(Replay, TimingIdenticalToLiveRun)
{
    for (const char *workload : {"compress", "li"}) {
        const SimConfig cfg = testConfig();
        const Program prog = workloads::build(workload, 1);
        Processor live(prog, cfg);
        const SimResult live_res = live.run();

        const std::string bytes = captureWorkload(workload, cfg);
        std::istringstream is(bytes);
        ReplayExecutor rx(is, workload);
        EXPECT_EQ(rx.meta().workload, workload);
        EXPECT_EQ(rx.meta().maxInsts, cfg.maxInsts);
        Processor replay(rx, rx.meta().workload, rx.meta().entryPc,
                         cfg);
        const SimResult replay_res = replay.run();

        expectSameTiming(live_res, replay_res);
    }
}

TEST(Replay, RecordingDoesNotPerturbTiming)
{
    const SimConfig cfg = testConfig();
    const Program prog = workloads::build("li", 1);
    Processor plain(prog, cfg);
    const SimResult plain_res = plain.run();

    std::ostringstream os;
    TraceMeta meta;
    meta.workload = prog.name;
    meta.entryPc = prog.entry;
    Executor exec(prog);
    TraceWriter writer(os, meta);
    RecordingSource source(exec, writer);
    Processor recorded(source, prog.name, prog.entry, cfg);
    const SimResult rec_res = recorded.run();

    expectSameTiming(plain_res, rec_res);
}

TEST(Replay, CapSmallerThanTraceStopsCleanly)
{
    const std::string bytes = captureWorkload("compress", testConfig());
    SimConfig small = testConfig(2'000);
    std::istringstream is(bytes);
    ReplayExecutor rx(is, "compress");
    Processor proc(rx, rx.meta().workload, rx.meta().entryPc, small);
    const SimResult res = proc.run();
    EXPECT_EQ(res.retired, 2'000u);
}

TEST(Replay, UncappedReplayClampsToRecordedRegion)
{
    // A capped recording ends mid-program (no serializing halt), so a
    // replay whose cap is lifted — or larger than the recording's —
    // must be clamped to the recorded region and stop cleanly there,
    // with timing identical to a replay at the recorded cap.
    const std::string path =
        ::testing::TempDir() + "tcfill_exhaust.tctrace";
    const SimConfig capped = testConfig(2'000);
    const SimResult rec = recordTrace("compress", 1, capped, path);

    setQuietLogging(true);  // silence the expected clamp warning
    SimConfig uncapped = testConfig(0);
    uncapped.maxCycles = 1'000'000;  // backstop against livelock
    const SimResult res = replayTrace(path, uncapped);
    EXPECT_EQ(res.retired, rec.retired);
    EXPECT_EQ(res.cycles, rec.cycles);
    EXPECT_LT(res.cycles, 1'000'000u);

    SimConfig larger = testConfig(5'000);
    const SimResult res2 = replayTrace(path, larger);
    EXPECT_EQ(res2.retired, rec.retired);
    EXPECT_EQ(res2.cycles, rec.cycles);
    setQuietLogging(false);
    std::remove(path.c_str());
}

// --------------------------------------------------------------------
// Round-trip fuzz over random programs
// --------------------------------------------------------------------

Program
randomProgram(Random &rng, int index)
{
    ProgramBuilder b("fuzz" + std::to_string(index));
    const Addr arr = b.dataWords(std::vector<std::int32_t>(64, 3));
    const int iters = static_cast<int>(rng.range(5, 40));
    b.li(1, iters);
    b.la(2, arr);
    Label top = b.newLabel();
    b.bind(top);
    const int body = static_cast<int>(rng.range(4, 12));
    for (int i = 0; i < body; ++i) {
        const RegIndex rd = static_cast<RegIndex>(rng.range(3, 10));
        const RegIndex rs = static_cast<RegIndex>(rng.range(1, 10));
        const RegIndex rt = static_cast<RegIndex>(rng.range(1, 10));
        switch (rng.below(8)) {
          case 0:
            b.add(rd, rs, rt);
            break;
          case 1:
            b.sub(rd, rs, rt);
            break;
          case 2:
            b.xor_(rd, rs, rt);
            break;
          case 3:
            b.addi(rd, rs,
                   static_cast<std::int32_t>(rng.range(-100, 100)));
            break;
          case 4:
            b.slli(rd, rs, static_cast<unsigned>(rng.range(0, 4)));
            break;
          case 5:
            b.lw(rd, 2,
                 static_cast<std::int32_t>(4 * rng.range(0, 63)));
            break;
          case 6:
            b.sw(rs, 2,
                 static_cast<std::int32_t>(4 * rng.range(0, 63)));
            break;
          default: {
            // Short forward branch over one instruction.
            Label skip = b.newLabel();
            b.beq(rs, rt, skip);
            b.addi(rd, rd, 1);
            b.bind(skip);
            break;
          }
        }
    }
    b.addi(1, 1, -1);
    b.bgtz(1, top);
    b.halt();
    return b.finish();
}

TEST(Fuzz, RecordReplayRoundtrip)
{
    Random rng(0xf022);
    for (int i = 0; i < 12; ++i) {
        const Program prog = randomProgram(rng, i);
        SimConfig cfg = testConfig(0);
        cfg.name = "fuzz";

        // Record a live timing run.
        std::ostringstream os;
        TraceMeta meta;
        meta.workload = prog.name;
        meta.config = cfg.name;
        meta.entryPc = prog.entry;
        Executor exec(prog);
        TraceWriter writer(os, meta);
        RecordingSource source(exec, writer);
        Processor rec_proc(source, prog.name, prog.entry, cfg);
        SimResult rec_res = rec_proc.run();
        writer.finish();

        // Replay: identical committed count and timing.
        std::istringstream is(os.str());
        ReplayExecutor rx(is, prog.name);
        Processor rep_proc(rx, rx.meta().workload, rx.meta().entryPc,
                           cfg);
        SimResult rep_res = rep_proc.run();
        ASSERT_EQ(rep_res.retired, rec_res.retired) << prog.name;
        expectSameTiming(rec_res, rep_res);

        // Byte-identical stats JSON once the mode provenance (the
        // one field that legitimately differs) is normalized.
        rec_res.mode = rep_res.mode = "x";
        rec_res.config = rep_res.config = cfg.name;
        std::ostringstream ja, jb;
        writeStatsJson(ja, "fuzz", {rec_res});
        writeStatsJson(jb, "fuzz", {rep_res});
        ASSERT_EQ(ja.str(), jb.str()) << prog.name;

        // And the decoded record stream matches a functional rerun.
        std::istringstream is2(os.str());
        TraceReader reader(is2);
        ASSERT_EQ(reader.error(), ReadStatus::Ok);
        Executor ref(prog);
        ExecRecord rec;
        while (reader.next(rec) == ReadStatus::Ok) {
            ASSERT_FALSE(ref.halted());
            expectSameRecord(rec, ref.step());
        }
        ASSERT_EQ(reader.error(), ReadStatus::Eof);
        // The recorder may have captured prefetched-but-unretired
        // tail records; the functional rerun must cover them all.
        EXPECT_EQ(reader.records(), reader.totalRecords());
    }
}

// --------------------------------------------------------------------
// BBV profiling
// --------------------------------------------------------------------

void
expectSameIntervals(const std::vector<BbvInterval> &a,
                    const std::vector<BbvInterval> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].insts, b[i].insts) << "interval " << i;
        EXPECT_EQ(a[i].blocks, b[i].blocks) << "interval " << i;
    }
}

TEST(Bbv, IntervalInvariants)
{
    const Program prog = workloads::build("li", 1);
    Executor exec(prog);
    const InstSeqNum interval = 1'000;
    auto ivs = profileBbv(exec, interval, kTestInsts);
    ASSERT_FALSE(ivs.empty());
    InstSeqNum total = 0;
    for (std::size_t i = 0; i < ivs.size(); ++i) {
        std::uint64_t sum = 0;
        for (const auto &[pc, count] : ivs[i].blocks)
            sum += count;
        EXPECT_EQ(sum, ivs[i].insts) << "interval " << i;
        if (i + 1 < ivs.size()) {
            EXPECT_EQ(ivs[i].insts, interval);
        }
        total += ivs[i].insts;
    }
    EXPECT_EQ(total, kTestInsts);
}

TEST(Bbv, FunctionalMatchesCommitHook)
{
    // The profiler sees the same committed stream whether driven by
    // the fast functional path or the retire unit's commit hook.
    const Program prog = workloads::build("li", 1);
    const SimConfig cfg = testConfig();
    const InstSeqNum interval = 1'000;

    Executor exec(prog);
    auto functional = profileBbv(exec, interval, cfg.maxInsts);

    BbvProfiler hooked(interval);
    Processor proc(prog, cfg);
    proc.setCommitHook([&hooked](const ExecRecord &rec, Cycle) {
        hooked.consume(rec);
    });
    proc.run();
    hooked.finish();

    expectSameIntervals(functional, hooked.intervals());
}

TEST(Bbv, JsonEmission)
{
    const Program prog = countdownProgram(100);
    Executor exec(prog);
    auto ivs = profileBbv(exec, 100);
    std::ostringstream os;
    writeBbvJson(os, prog.name, 100, ivs);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\": \"tcfill-bbv-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"workload\": \"countdown\""),
              std::string::npos);
    // Deterministic bytes on re-emission.
    std::ostringstream os2;
    writeBbvJson(os2, prog.name, 100, ivs);
    EXPECT_EQ(doc, os2.str());
}

// --------------------------------------------------------------------
// Simpoint selection
// --------------------------------------------------------------------

std::vector<BbvInterval>
profiledIntervals(const char *workload, InstSeqNum interval,
                  InstSeqNum cap)
{
    const Program prog = workloads::build(workload, 1);
    Executor exec(prog);
    return profileBbv(exec, interval, cap);
}

TEST(Simpoints, SelectionProperties)
{
    auto ivs = profiledIntervals("compress", 1'000, 50'000);
    ASSERT_GE(ivs.size(), 8u);
    auto pts = selectSimpoints(ivs, 5);
    ASSERT_FALSE(pts.empty());
    EXPECT_LE(pts.size(), 5u);

    double weight = 0.0;
    std::size_t prev = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_LT(pts[i].interval, ivs.size());
        EXPECT_GT(pts[i].weight, 0.0);
        if (i > 0) {
            EXPECT_GT(pts[i].interval, prev) << "sorted, unique";
        }
        prev = pts[i].interval;
        weight += pts[i].weight;
    }
    EXPECT_NEAR(weight, 1.0, 1e-9);
}

TEST(Simpoints, Deterministic)
{
    auto ivs = profiledIntervals("li", 1'000, 30'000);
    auto a = selectSimpoints(ivs, 4);
    auto b = selectSimpoints(ivs, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].interval, b[i].interval);
        EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
    }
}

TEST(Simpoints, KClampsToIntervalCount)
{
    auto ivs = profiledIntervals("li", 5'000, 15'000);
    auto pts = selectSimpoints(ivs, 100);
    EXPECT_LE(pts.size(), ivs.size());
    double weight = 0.0;
    for (const auto &p : pts)
        weight += p.weight;
    EXPECT_NEAR(weight, 1.0, 1e-9);
}

TEST(Simpoints, EmptyInput)
{
    EXPECT_TRUE(selectSimpoints({}, 4).empty());
}

// --------------------------------------------------------------------
// Sampled runs
// --------------------------------------------------------------------

TEST(Sampling, IpcWithinBoundOfFullRun)
{
    // The bound here matches the recipe documented in EXPERIMENTS.md:
    // k=8 x 10k-inst intervals with 50k warmup tracks a 100k-inst
    // full run within 10% (measured ~0.5% compress, ~3% li).
    const SimConfig cfg = testConfig(100'000);
    SampleSpec spec;
    spec.k = 8;
    spec.interval = 10'000;
    spec.warmup = 50'000;
    for (const char *workload : {"compress", "li"}) {
        const Program prog = workloads::build(workload, 1);
        Processor full(prog, cfg);
        const double full_ipc = full.run().ipc();

        const SimResult sampled = runSampled(workload, 1, cfg, spec);
        EXPECT_EQ(sampled.mode, "sample");
        EXPECT_EQ(sampled.retired, 100'000u);
        const double err =
            std::abs(sampled.ipc() - full_ipc) / full_ipc;
        EXPECT_LT(err, 0.10)
            << workload << ": sampled " << sampled.ipc() << " vs full "
            << full_ipc;
    }
}

TEST(Sampling, RetireProbeMatchesPrefixSubtraction)
{
    // The single-run warmup probe must read exactly the cycle count a
    // separate run capped at the warmup boundary would report — the
    // deterministic-prefix property the sampled estimate rests on.
    const Program prog = workloads::build("compress", 1);
    const SimConfig base = testConfig();
    constexpr InstSeqNum kSkip = 20'000;
    constexpr InstSeqNum kWarm = 10'000;
    constexpr InstSeqNum kMeasure = 10'000;

    auto position = [&prog](InstSeqNum skip) {
        Executor exec(prog);
        exec.fastForward(skip);
        return exec;
    };

    // Reference: two capped runs, as the pre-checkpointing
    // implementation timed them.
    Cycle c_warm_ref, c_full_ref;
    {
        Executor exec = position(kSkip);
        SimConfig cfg = base;
        cfg.maxInsts = kWarm;
        Processor proc(exec, prog.name, exec.state().pc, cfg);
        c_warm_ref = proc.run().cycles;
    }
    {
        Executor exec = position(kSkip);
        SimConfig cfg = base;
        cfg.maxInsts = kWarm + kMeasure;
        Processor proc(exec, prog.name, exec.state().pc, cfg);
        c_full_ref = proc.run().cycles;
    }

    // One probed run reproduces both numbers.
    Executor exec = position(kSkip);
    SimConfig cfg = base;
    cfg.maxInsts = kWarm + kMeasure;
    Processor proc(exec, prog.name, exec.state().pc, cfg);
    Cycle c_probe = 0;
    proc.setRetireCycleProbe(kWarm, &c_probe);
    const SimResult full = proc.run();
    EXPECT_EQ(c_probe, c_warm_ref);
    EXPECT_EQ(full.cycles, c_full_ref);
    EXPECT_EQ(full.cycles - c_probe, c_full_ref - c_warm_ref);
}

TEST(Sampling, FastProfileMatchesVirtualProfile)
{
    for (const char *workload : {"compress", "li"}) {
        const Program prog = workloads::build(workload, 1);
        Executor slow(prog), fast(prog);
        const auto a = profileBbv(static_cast<CommitSource &>(slow),
                                  1'000, 50'000);
        const auto b = profileBbv(fast, 1'000, 50'000);
        ASSERT_EQ(a.size(), b.size()) << workload;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].insts, b[i].insts);
            EXPECT_EQ(a[i].blocks, b[i].blocks) << workload << " @" << i;
        }
    }
}

TEST(Sampling, MatchesReferenceImplementation)
{
    // The checkpoint-parallel path must reproduce the serial
    // re-execute reference bit for bit: same simpoints, same
    // per-interval cycles, same fold.
    const SimConfig cfg = testConfig(100'000);
    SampleSpec spec;
    spec.k = 8;
    spec.interval = 10'000;
    spec.warmup = 50'000;
    for (const char *workload : {"compress", "li"}) {
        const SimResult ref =
            runSampledReference(workload, 1, cfg, spec);
        const SimResult opt = runSampled(workload, 1, cfg, spec);
        EXPECT_EQ(opt.mode, ref.mode) << workload;
        EXPECT_EQ(opt.retired, ref.retired) << workload;
        EXPECT_EQ(opt.cycles, ref.cycles) << workload;
        EXPECT_EQ(opt.maxInsts, ref.maxInsts) << workload;
    }
}

TEST(Sampling, DeterministicAcrossJobsAndCheckpointKnobs)
{
    const SimConfig cfg = testConfig(100'000);
    SampleSpec spec;
    spec.k = 8;
    spec.interval = 10'000;
    spec.warmup = 50'000;

    spec.jobs = 1;
    const SimResult serial = runSampled("compress", 1, cfg, spec);

    spec.jobs = 8;
    const SimResult pooled = runSampled("compress", 1, cfg, spec);
    EXPECT_EQ(pooled.cycles, serial.cycles);
    EXPECT_EQ(pooled.retired, serial.retired);
    EXPECT_EQ(pooled.sample.jobs, 8u);

    // Re-executing prefixes instead of restoring checkpoints changes
    // only the host-side accounting, never the estimate.
    spec.useCheckpoints = false;
    const SimResult reexec = runSampled("compress", 1, cfg, spec);
    EXPECT_EQ(reexec.cycles, serial.cycles);
    EXPECT_EQ(reexec.sample.checkpoints, 0u);
    EXPECT_EQ(reexec.sample.restores, 0u);

    // A sparser checkpoint stride trades restore traffic for residual
    // fast-forward without moving the estimate.
    spec.useCheckpoints = true;
    spec.checkpointStride = 3;
    const SimResult strided = runSampled("compress", 1, cfg, spec);
    EXPECT_EQ(strided.cycles, serial.cycles);
    EXPECT_LT(strided.sample.checkpoints, serial.sample.checkpoints);
    EXPECT_GE(strided.sample.ffInsts, serial.sample.ffInsts);

    // Checkpoint accounting of the dense serial run: one restore per
    // simpoint, a checkpoint at every interval boundary but the
    // region's end, and every restore bounded by the journal.
    EXPECT_EQ(serial.sample.simpoints, serial.sample.restores);
    EXPECT_EQ(serial.sample.checkpoints, 10u);
    EXPECT_GT(serial.sample.checkpointPages, 0u);
    EXPECT_LE(serial.sample.restoredPages,
              serial.sample.restores * serial.sample.checkpointPages);
}

// --------------------------------------------------------------------
// Replay result caching
// --------------------------------------------------------------------

TEST(ReplayCache, KeyedOnTraceContent)
{
    const std::string dir = ::testing::TempDir();
    const std::string path_a = dir + "tcfill_cache_a.tctrace";
    const std::string path_b = dir + "tcfill_cache_b.tctrace";
    const SimConfig cfg = testConfig(5'000);

    const SimResult rec =
        recordTrace("compress", 1, cfg, path_a);
    EXPECT_EQ(rec.mode, "record");
    EXPECT_EQ(rec.maxInsts, cfg.maxInsts);

    // Same bytes under a second path: identity must not change.
    {
        std::ifstream src(path_a, std::ios::binary);
        std::ofstream dst(path_b, std::ios::binary);
        dst << src.rdbuf();
    }
    EXPECT_EQ(traceIdentity(path_a), traceIdentity(path_b));

    SimRunner pool(2);
    bool hit = true;
    SimResult first = submitReplay(pool, path_a, cfg, &hit).get();
    EXPECT_FALSE(hit);
    EXPECT_EQ(first.retired, rec.retired);
    EXPECT_EQ(first.cycles, rec.cycles);

    submitReplay(pool, path_a, cfg, &hit).get();
    EXPECT_TRUE(hit);
    submitReplay(pool, path_b, cfg, &hit).get();
    EXPECT_TRUE(hit) << "cache key must follow content, not path";

    // A different config is a different point.
    SimConfig other = testConfig(5'000);
    other.useTraceCache = false;
    submitReplay(pool, path_a, other, &hit).get();
    EXPECT_FALSE(hit);

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(ReplayCache, ReplayTraceMatchesRecordResult)
{
    const std::string path =
        ::testing::TempDir() + "tcfill_rr.tctrace";
    const SimConfig cfg = testConfig(5'000);
    const SimResult rec = recordTrace("li", 1, cfg, path);
    const SimResult rep = replayTrace(path, cfg);
    EXPECT_EQ(rep.mode, "replay");
    EXPECT_EQ(rep.workload, "li");
    expectSameTiming(rec, rep);
    std::remove(path.c_str());
}

} // namespace
} // namespace tcfill::tracefile
