/** @file Integration tests: the full pipeline on small programs. */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "sim/processor.hh"

namespace tcfill
{
namespace
{

/** A simple counted loop with a bit of arithmetic. */
Program
loopProgram(int iters)
{
    ProgramBuilder pb("loop");
    Addr buf = pb.allocData(256, 8);
    pb.la(1, buf);
    pb.li(2, iters);
    pb.li(3, 0);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.add(3, 3, 2);
    pb.andi(4, 2, 7);
    pb.slli(5, 4, 2);
    pb.lwx(6, 1, 5);
    pb.add(3, 3, 6);
    pb.swx(3, 1, 5);
    pb.addi(2, 2, -1);
    pb.bgtz(2, top);
    pb.halt();
    return pb.finish();
}

/** Call-heavy program exercising the RAS. */
Program
callProgram(int iters)
{
    ProgramBuilder pb("calls");
    Label fn = pb.newLabel(), start = pb.newLabel();
    pb.j(start);
    pb.bind(fn);
    pb.addi(2, 1, 3);
    pb.ret();
    pb.bind(start);
    pb.li(4, iters);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.move(1, 4);
    pb.jal(fn);
    pb.add(5, 5, 2);
    pb.addi(4, 4, -1);
    pb.bgtz(4, top);
    pb.halt();
    return pb.finish();
}

SimConfig
cfgWith(FillOptimizations opts)
{
    SimConfig cfg = SimConfig::withOpts(opts);
    return cfg;
}

TEST(Processor, RunsToCompletion)
{
    Program p = loopProgram(500);
    SimResult r = simulate(p, cfgWith(FillOptimizations::none()));
    EXPECT_EQ(r.retired, runFunctional(p));
    EXPECT_GT(r.ipc(), 0.5);
    EXPECT_LT(r.ipc(), 16.0);
}

TEST(Processor, RetiredCountInvariantUnderOptimizations)
{
    Program p = loopProgram(400);
    InstSeqNum expect = runFunctional(p);
    for (auto opts : {FillOptimizations::none(),
                      FillOptimizations::all()}) {
        SimResult r = simulate(p, cfgWith(opts));
        EXPECT_EQ(r.retired, expect);
    }
}

TEST(Processor, DeterministicAcrossRuns)
{
    Program p = loopProgram(300);
    SimResult a = simulate(p, cfgWith(FillOptimizations::all()));
    SimResult b = simulate(p, cfgWith(FillOptimizations::all()));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.tcHits, b.tcHits);
}

TEST(Processor, TraceCacheImprovesFetch)
{
    // A fetch-bound loop: independent work chopped into small basic
    // blocks by always-untaken branches. The I-cache path delivers
    // one block per cycle; the trace cache delivers several.
    ProgramBuilder pb("blocks");
    pb.li(2, 800);
    Label top = pb.newLabel();
    pb.bind(top);
    std::array<Label, 4> skips{pb.newLabel(), pb.newLabel(),
                               pb.newLabel(), pb.newLabel()};
    for (int b = 0; b < 4; ++b) {
        // Independent per-block work on disjoint registers.
        RegIndex r = static_cast<RegIndex>(6 + b);
        pb.addi(r, r, 1);
        pb.xori(static_cast<RegIndex>(10 + b), r, 0x55);
        pb.bltz(2, skips[static_cast<std::size_t>(b)]);  // never taken
        pb.bind(skips[static_cast<std::size_t>(b)]);
    }
    pb.addi(2, 2, -1);
    pb.bgtz(2, top);
    pb.halt();
    Program p = pb.finish();

    SimConfig with_tc = cfgWith(FillOptimizations::none());
    SimConfig without_tc = with_tc;
    without_tc.useTraceCache = false;
    SimResult a = simulate(p, with_tc);
    SimResult b = simulate(p, without_tc);
    EXPECT_GT(a.tcHits, 0u);
    EXPECT_EQ(b.tcHits, 0u);
    // Multi-block trace lines beat one block per cycle.
    EXPECT_GT(a.ipc(), 1.2 * b.ipc());
}

TEST(Processor, TraceCacheHitRateConvergesOnALoop)
{
    Program p = loopProgram(2000);
    SimResult r = simulate(p, cfgWith(FillOptimizations::none()));
    EXPECT_GT(r.tcHitRate(), 0.9);
}

TEST(Processor, MaxInstsCap)
{
    Program p = loopProgram(100000);
    SimConfig cfg = cfgWith(FillOptimizations::none());
    cfg.maxInsts = 5000;
    SimResult r = simulate(p, cfg);
    EXPECT_EQ(r.retired, 5000u);
}

TEST(Processor, MaxCyclesCap)
{
    Program p = loopProgram(100000);
    SimConfig cfg = cfgWith(FillOptimizations::none());
    cfg.maxCycles = 1000;
    SimResult r = simulate(p, cfg);
    EXPECT_EQ(r.cycles, 1000u);
}

TEST(Processor, CallsReturnPredictedByRas)
{
    Program p = callProgram(500);
    SimResult r = simulate(p, cfgWith(FillOptimizations::none()));
    // Warm RAS: the per-call return should almost never mispredict;
    // budget a few per cold start.
    EXPECT_LT(r.mispredicts, 30u);
}

TEST(Processor, MoveMarkingCountsMoves)
{
    Program p = callProgram(400);
    FillOptimizations mv;
    mv.markMoves = true;
    SimResult r = simulate(p, cfgWith(mv));
    // One `move` per loop iteration out of ~6 instructions.
    EXPECT_GT(r.fracMoves(), 0.05);
    EXPECT_GT(r.fracMoveIdioms(), 0.05);
    // Baseline still *detects* idioms but marks none.
    SimResult base = simulate(p, cfgWith(FillOptimizations::none()));
    EXPECT_EQ(base.dynMoves, 0u);
    EXPECT_GT(base.dynMoveIdioms, 0u);
}

TEST(Processor, ScaledAddsCountOnArrayLoop)
{
    Program p = loopProgram(500);
    FillOptimizations sc;
    sc.scaledAdds = true;
    SimResult r = simulate(p, cfgWith(sc));
    EXPECT_GT(r.dynScaled, 0u);
}

TEST(Processor, FillLatencyInsensitive)
{
    // The paper's headline robustness claim (§4.6): 1/5/10-cycle fill
    // pipelines perform nearly identically once traces are warm.
    Program p = loopProgram(3000);
    double ipc1 = 0, ipc10 = 0;
    {
        SimConfig cfg = SimConfig::withOpts(FillOptimizations::all(), 1);
        ipc1 = simulate(p, cfg).ipc();
    }
    {
        SimConfig cfg =
            SimConfig::withOpts(FillOptimizations::all(), 10);
        ipc10 = simulate(p, cfg).ipc();
    }
    EXPECT_NEAR(ipc1, ipc10, 0.05 * ipc1);
}

TEST(Processor, InactiveIssueHelpsOnHardBranches)
{
    // A loop with a data-dependent branch the predictor cannot learn.
    ProgramBuilder pb("hard");
    Addr buf = pb.allocData(1024, 8);
    // Fill with pseudo-random words at build time.
    pb.la(1, buf);
    pb.li(2, 200);
    pb.li(7, 0x55a3);
    Label top = pb.newLabel(), skip = pb.newLabel();
    pb.bind(top);
    // xorshift-ish whitener so the branch is ~50/50.
    pb.slli(8, 7, 7);
    pb.xor_(7, 7, 8);
    pb.srli(8, 7, 9);
    pb.xor_(7, 7, 8);
    pb.andi(9, 7, 1);
    pb.beq(9, 0, skip);
    pb.addi(3, 3, 1);
    pb.bind(skip);
    pb.addi(2, 2, -1);
    pb.bgtz(2, top);
    pb.halt();
    Program p = pb.finish();

    SimConfig on = cfgWith(FillOptimizations::none());
    SimConfig off = on;
    off.inactiveIssue = false;
    SimResult a = simulate(p, on);
    SimResult b = simulate(p, off);
    EXPECT_GT(a.inactiveRescues, 0u);
    EXPECT_EQ(b.inactiveRescues, 0u);
    EXPECT_GE(a.ipc(), b.ipc());
}

TEST(Processor, SerializingInstructionDrains)
{
    ProgramBuilder pb("serial");
    pb.li(1, 10);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.syscall_();
    pb.addi(1, 1, -1);
    pb.bgtz(1, top);
    pb.halt();
    Program p = pb.finish();
    SimResult r = simulate(p, cfgWith(FillOptimizations::none()));
    EXPECT_EQ(r.retired, runFunctional(p));
}

TEST(Processor, StatsDumpContainsComponents)
{
    Program p = loopProgram(200);
    Processor proc(p, cfgWith(FillOptimizations::none()));
    proc.run();
    std::ostringstream os;
    proc.dumpStats(os);
    for (const char *key : {"tcache.hits", "fill.segments",
                            "bpred.accuracy", "l1d.misses",
                            "core.selected"}) {
        EXPECT_NE(os.str().find(key), std::string::npos) << key;
    }
}

TEST(Processor, IndirectTargetMispredictsThenLearns)
{
    // A computed jump alternating between two targets: the last-target
    // indirect predictor mispredicts on every alternation.
    ProgramBuilder pb("indirect");
    Label t1 = pb.newLabel(), t2 = pb.newLabel(), top = pb.newLabel();
    Label join = pb.newLabel();
    Addr tbl = pb.allocData(8, 8);
    pb.la(1, tbl);
    pb.li(2, 400);
    pb.bind(top);
    pb.andi(3, 2, 1);
    pb.slli(3, 3, 2);
    pb.lwx(4, 1, 3);        // target from table
    pb.jr(4);
    pb.bind(t1);
    pb.addi(5, 5, 1);
    pb.j(join);
    pb.bind(t2);
    pb.addi(6, 6, 1);
    pb.j(join);
    pb.bind(join);
    pb.addi(2, 2, -1);
    pb.bgtz(2, top);
    pb.halt();
    Program p = pb.finish();
    // Late-bind the two targets into the table. The label addresses
    // are only known after finish(); patch the data segment.
    // t1 and t2 are the first instructions after the jr.
    Addr jr_pc = 0;
    for (std::size_t i = 0; i < p.text.size(); ++i) {
        if (decode(p.text[i]).op == Op::JR)
            jr_pc = p.textBase + i * 4;
    }
    ASSERT_NE(jr_pc, 0u);
    auto patch = [&](Addr addr, std::uint32_t v) {
        for (auto &seg : p.data) {
            if (addr >= seg.base &&
                addr + 4 <= seg.base + seg.bytes.size()) {
                for (int k = 0; k < 4; ++k)
                    seg.bytes[addr - seg.base + k] =
                        static_cast<std::uint8_t>(v >> (8 * k));
            }
        }
    };
    patch(tbl, static_cast<std::uint32_t>(jr_pc + 4 + 8));  // t2
    patch(tbl + 4, static_cast<std::uint32_t>(jr_pc + 4));  // t1

    SimResult r = simulate(p, cfgWith(FillOptimizations::none()));
    EXPECT_EQ(r.retired, runFunctional(p));
    // Alternating targets defeat a last-target predictor: roughly one
    // mispredict per iteration.
    EXPECT_GT(r.mispredicts, 300u);
}

TEST(Processor, PromotedBranchDemotionRecovers)
{
    // A branch taken 200 times (promoted at 64) then not-taken once:
    // the promoted mispredict must recover, and the run completes.
    ProgramBuilder pb("promote");
    Label top = pb.newLabel(), out = pb.newLabel();
    pb.li(1, 200);
    pb.bind(top);
    pb.addi(1, 1, -1);
    pb.bgtz(1, top);        // promoted after 64 taken occurrences
    pb.bind(out);
    pb.li(2, 77);
    pb.halt();
    Program p = pb.finish();
    SimResult r = simulate(p, cfgWith(FillOptimizations::none()));
    EXPECT_EQ(r.retired, runFunctional(p));
}

TEST(Processor, TinyWindowStillCompletes)
{
    Program p = loopProgram(300);
    SimConfig cfg = cfgWith(FillOptimizations::all());
    cfg.windowCap = 32;     // heavy issue backpressure
    SimResult r = simulate(p, cfg);
    EXPECT_EQ(r.retired, runFunctional(p));
}

TEST(Processor, DeadElisionCountsAndStaysCorrect)
{
    // A loop with a same-region dead write (flag recomputed).
    ProgramBuilder pb("dead");
    pb.li(2, 600);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.slti(4, 2, 100);     // dead: overwritten before any read
    pb.slti(4, 2, 300);
    pb.add(5, 5, 4);
    pb.addi(2, 2, -1);
    pb.bgtz(2, top);
    pb.halt();
    Program p = pb.finish();
    SimResult r = simulate(p, cfgWith(FillOptimizations::extended()));
    EXPECT_EQ(r.retired, runFunctional(p));
    EXPECT_GT(r.dynElided, 300u);
}

TEST(Processor, StorageBitsFollowConfiguredOpts)
{
    Program p = loopProgram(50);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    Processor proc(p, cfg);
    EXPECT_EQ(proc.traceCache().storageBits(), 2048u * 16 * 46);
}

/** Property: every optimization combination retires the same count
 *  and completes without deadlock on a mixed program. */
class OptMatrix : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OptMatrix, AllCombinationsComplete)
{
    unsigned bits = GetParam();
    FillOptimizations opts;
    opts.markMoves = bits & 1;
    opts.reassociate = bits & 2;
    opts.scaledAdds = bits & 4;
    opts.placement = bits & 8;
    opts.deadCodeElim = bits & 16;      // §5 extension
    Program p = loopProgram(600);
    SimResult r = simulate(p, cfgWith(opts));
    EXPECT_EQ(r.retired, runFunctional(p));
    EXPECT_GT(r.ipc(), 0.3);
}

INSTANTIATE_TEST_SUITE_P(AllThirtyTwo, OptMatrix,
                         ::testing::Range(0u, 32u));

} // namespace
} // namespace tcfill
