/** @file Tests for the benchmark suite kernels. */

#include <gtest/gtest.h>

#include "arch/executor.hh"
#include "sim/processor.hh"
#include "workloads/suite.hh"

namespace tcfill
{
namespace
{

TEST(Suite, FifteenBenchmarksInPaperOrder)
{
    const auto &s = workloads::suite();
    ASSERT_EQ(s.size(), 15u);
    EXPECT_EQ(s.front().name, "compress");
    EXPECT_EQ(s.back().name, "tex");
    unsigned specint = 0;
    for (const auto &w : s)
        specint += w.specint;
    EXPECT_EQ(specint, 8u);     // SPECint95 members
}

TEST(Suite, LookupByEitherName)
{
    EXPECT_EQ(workloads::find("m88ksim").shortName, "m88k");
    EXPECT_EQ(workloads::find("m88k").name, "m88ksim");
}

TEST(SuiteDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(workloads::find("nope"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(Suite, ProgramsAreDeterministic)
{
    Program a = workloads::build("compress", 1);
    Program b = workloads::build("compress", 1);
    EXPECT_EQ(a.text, b.text);
    ASSERT_EQ(a.data.size(), b.data.size());
    for (std::size_t i = 0; i < a.data.size(); ++i)
        EXPECT_EQ(a.data[i].bytes, b.data[i].bytes);
}

/** Every kernel halts within a generous budget and runs a sensible
 *  number of dynamic instructions at scale 1. */
class WorkloadHalts
    : public ::testing::TestWithParam<const workloads::Workload *>
{
};

TEST_P(WorkloadHalts, FunctionalRunHalts)
{
    const auto &w = *GetParam();
    Program p = w.build(1);
    InstSeqNum n = runFunctional(p, 20'000'000);
    EXPECT_LT(n, 20'000'000u) << w.name << " did not halt";
    EXPECT_GT(n, 30'000u) << w.name << " is too short";
}

TEST_P(WorkloadHalts, ScaleIncreasesWork)
{
    const auto &w = *GetParam();
    InstSeqNum n1 = runFunctional(w.build(1), 30'000'000);
    InstSeqNum n2 = runFunctional(w.build(2), 60'000'000);
    EXPECT_GT(n2, n1 + n1 / 2) << w.name;
}

TEST_P(WorkloadHalts, TimingRunCompletes)
{
    const auto &w = *GetParam();
    Program p = w.build(1);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.maxInsts = 30'000;
    SimResult r = simulate(p, cfg);
    EXPECT_EQ(r.retired, 30'000u) << w.name;
    EXPECT_GT(r.ipc(), 0.2) << w.name;
}

std::vector<const workloads::Workload *>
allWorkloads()
{
    std::vector<const workloads::Workload *> out;
    for (const auto &w : workloads::suite())
        out.push_back(&w);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadHalts, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<const workloads::Workload *> &i) {
        std::string n = i.param->name;
        for (auto &ch : n) {
            if (ch == '-')
                ch = '_';
        }
        return n;
    });

} // namespace
} // namespace tcfill
