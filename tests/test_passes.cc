/** @file
 * Unit and property tests for the fill unit's optimization passes:
 * dependency marking, register-move marking, reassociation, scaled
 * adds and instruction placement (paper §4).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "fill/passes.hh"
#include "tests/segment_eval.hh"

namespace tcfill
{
namespace
{

/** Append an instruction to a segment with synthetic PC/region. */
TraceInst &
append(TraceSegment &seg, Instruction in, unsigned cf_region = 0)
{
    TraceInst ti;
    ti.inst = in;
    ti.pc = 0x400000 + seg.size() * 4;
    ti.origIdx = static_cast<std::uint8_t>(seg.size());
    ti.slot = ti.origIdx;
    ti.cfRegion = static_cast<std::uint8_t>(cf_region);
    ti.blockNum = static_cast<std::uint8_t>(cf_region & 3);
    seg.insts.push_back(ti);
    return seg.insts.back();
}

Instruction
addi(RegIndex rt, RegIndex rs, std::int32_t imm)
{
    Instruction in;
    in.op = Op::ADDI;
    in.dest = rt;
    in.src1 = rs;
    in.imm = imm;
    return in;
}

Instruction
add(RegIndex rd, RegIndex rs, RegIndex rt)
{
    Instruction in;
    in.op = Op::ADD;
    in.dest = rd;
    in.src1 = rs;
    in.src2 = rt;
    return in;
}

Instruction
slli(RegIndex rd, RegIndex rs, unsigned sh)
{
    Instruction in;
    in.op = Op::SLLI;
    in.dest = rd;
    in.src1 = rs;
    in.shamt = static_cast<std::uint8_t>(sh);
    return in;
}

Instruction
lw(RegIndex rt, RegIndex base, std::int32_t disp)
{
    Instruction in;
    in.op = Op::LW;
    in.dest = rt;
    in.src1 = base;
    in.imm = disp;
    return in;
}

// ---- dependency marking ------------------------------------------------

TEST(DepMark, InternalAndLiveIn)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 4));         // 0: r3 <- r1 (live-in)
    append(seg, addi(4, 3, 4));         // 1: r4 <- r3 (inst 0)
    append(seg, add(5, 4, 9));          // 2: r5 <- r4 (1), r9 live-in
    markDependencies(seg);
    EXPECT_EQ(seg.insts[0].srcDep[0], kDepLiveIn);
    EXPECT_EQ(seg.insts[1].srcDep[0], 0);
    EXPECT_EQ(seg.insts[2].srcDep[0], 1);
    EXPECT_EQ(seg.insts[2].srcDep[1], kDepLiveIn);
    EXPECT_TRUE(depsConsistent(seg));
}

TEST(DepMark, R0NeverDepends)
{
    TraceSegment seg;
    append(seg, addi(0, 1, 4));         // write to r0: no real dest
    append(seg, add(2, 0, 1));          // r0 source: live-in sentinel
    markDependencies(seg);
    EXPECT_EQ(seg.insts[1].srcDep[0], kDepLiveIn);
}

TEST(DepMark, LiveOutTracksOverwrites)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 1));
    append(seg, addi(3, 3, 1));     // overwrites r3
    append(seg, addi(4, 3, 1));
    markDependencies(seg);
    EXPECT_FALSE(seg.insts[0].liveOut);
    EXPECT_TRUE(seg.insts[1].liveOut);
    EXPECT_TRUE(seg.insts[2].liveOut);
}

TEST(DepMark, StoreDataDependency)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 1));
    Instruction sw;
    sw.op = Op::SW;
    sw.src1 = 2;
    sw.src3 = 3;
    sw.imm = 0;
    append(seg, sw);
    markDependencies(seg);
    EXPECT_EQ(seg.insts[1].srcDep[0], kDepLiveIn);  // base r2
    EXPECT_EQ(seg.insts[1].srcDep[1], 0);           // data r3
}

// ---- register-move marking -----------------------------------------

TEST(Moves, MarksAndRewiresConsumer)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 5));     // 0: real producer
    append(seg, addi(4, 3, 0));     // 1: move r4 <- r3
    append(seg, add(5, 4, 4));      // 2: consumes the move twice
    markDependencies(seg);
    EXPECT_EQ(markMoves(seg), 1u);

    EXPECT_TRUE(seg.insts[1].isMove);
    EXPECT_EQ(seg.insts[1].moveSrc, 3);
    EXPECT_EQ(seg.insts[1].moveSrcDep, 0);
    // Consumer now reads r3 straight from instruction 0.
    EXPECT_EQ(seg.insts[2].inst.src1, 3);
    EXPECT_EQ(seg.insts[2].inst.src2, 3);
    EXPECT_EQ(seg.insts[2].srcDep[0], 0);
    EXPECT_EQ(seg.insts[2].srcDep[1], 0);
    EXPECT_TRUE(depsConsistent(seg));
}

TEST(Moves, ChainedMovesCollapse)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 5));     // 0
    append(seg, addi(4, 3, 0));     // 1: mv r4 <- r3
    append(seg, addi(5, 4, 0));     // 2: mv r5 <- r4
    append(seg, addi(6, 5, 1));     // 3: consumer
    markDependencies(seg);
    EXPECT_EQ(markMoves(seg), 2u);
    // The second move aliases past the first.
    EXPECT_EQ(seg.insts[2].moveSrc, 3);
    EXPECT_EQ(seg.insts[2].moveSrcDep, 0);
    // The consumer points at the real producer.
    EXPECT_EQ(seg.insts[3].inst.src1, 3);
    EXPECT_EQ(seg.insts[3].srcDep[0], 0);
}

TEST(Moves, LiveInMoveSource)
{
    TraceSegment seg;
    append(seg, addi(4, 7, 0));     // mv r4 <- r7 (live-in)
    append(seg, addi(5, 4, 2));
    markDependencies(seg);
    markMoves(seg);
    EXPECT_EQ(seg.insts[0].moveSrcDep, kDepLiveIn);
    EXPECT_EQ(seg.insts[1].inst.src1, 7);
    EXPECT_EQ(seg.insts[1].srcDep[0], kDepLiveIn);
}

TEST(Moves, ZeroIdiomAliasesToR0)
{
    TraceSegment seg;
    append(seg, addi(4, 0, 0));     // r4 <- 0
    append(seg, add(5, 4, 1));
    markDependencies(seg);
    // Rewiring turns the consumer into `add r5, r0, r1` — itself a
    // move idiom, so the pass cascades and marks both.
    EXPECT_EQ(markMoves(seg), 2u);
    EXPECT_EQ(seg.insts[0].moveSrc, kRegZero);
    EXPECT_EQ(seg.insts[1].inst.src1, kRegZero);
    EXPECT_TRUE(seg.insts[1].isMove);
    EXPECT_EQ(seg.insts[1].moveSrc, 1);
    EXPECT_EQ(seg.insts[1].moveSrcDep, kDepLiveIn);
}

TEST(Moves, MoveSourceRedefinedBetween)
{
    // mv r4 <- r3; r3 redefined; consumer of r4 must still see the
    // *old* r3 value: the dep index pins the dataflow.
    TraceSegment seg;
    append(seg, addi(3, 1, 5));     // 0
    append(seg, addi(4, 3, 0));     // 1: mv
    append(seg, addi(3, 2, 9));     // 2: r3 redefined
    append(seg, addi(6, 4, 1));     // 3: consumer of the move
    markDependencies(seg);
    markMoves(seg);
    EXPECT_EQ(seg.insts[3].inst.src1, 3);
    EXPECT_EQ(seg.insts[3].srcDep[0], 0);   // inst 0, not inst 2
}

// ---- reassociation -----------------------------------------------------

TEST(Reassoc, CombinesCrossRegionPair)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 4), 0);
    append(seg, addi(5, 3, 4), 1);      // different cf region
    markDependencies(seg);
    EXPECT_EQ(reassociate(seg), 1u);
    EXPECT_EQ(seg.insts[1].inst.src1, 1);
    EXPECT_EQ(seg.insts[1].inst.imm, 8);
    EXPECT_EQ(seg.insts[1].srcDep[0], kDepLiveIn);
    EXPECT_TRUE(seg.insts[1].reassociated);
    EXPECT_TRUE(depsConsistent(seg));
}

TEST(Reassoc, SameRegionBlockedByDefault)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 4), 0);
    append(seg, addi(5, 3, 4), 0);      // same region
    markDependencies(seg);
    EXPECT_EQ(reassociate(seg), 0u);

    ReassocOptions opts;
    opts.crossBlockOnly = false;
    EXPECT_EQ(reassociate(seg, opts), 1u);
}

TEST(Reassoc, TransitiveChainFolds)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 4), 0);
    append(seg, addi(4, 3, 4), 1);
    append(seg, addi(5, 4, 4), 2);
    markDependencies(seg);
    EXPECT_EQ(reassociate(seg), 2u);
    // The last one accumulates the whole chain.
    EXPECT_EQ(seg.insts[2].inst.src1, 1);
    EXPECT_EQ(seg.insts[2].inst.imm, 12);
}

TEST(Reassoc, RejectsImmediateOverflow)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 30000), 0);
    append(seg, addi(5, 3, 30000), 1);  // sum 60000 > 32767
    markDependencies(seg);
    EXPECT_EQ(reassociate(seg), 0u);
    EXPECT_EQ(seg.insts[1].inst.imm, 30000);
}

TEST(Reassoc, FoldsIntoLoadDisplacement)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 16), 0);
    append(seg, lw(5, 3, 8), 1);
    markDependencies(seg);
    EXPECT_EQ(reassociate(seg), 1u);
    EXPECT_EQ(seg.insts[1].inst.src1, 1);
    EXPECT_EQ(seg.insts[1].inst.imm, 24);

    ReassocOptions no_mem;
    no_mem.foldMemDisplacement = false;
    TraceSegment seg2;
    append(seg2, addi(3, 1, 16), 0);
    append(seg2, lw(5, 3, 8), 1);
    markDependencies(seg2);
    EXPECT_EQ(reassociate(seg2, no_mem), 0u);
}

TEST(Reassoc, OnlyAdditiveImmediates)
{
    TraceSegment seg;
    Instruction ori;
    ori.op = Op::ORI;
    ori.dest = 3;
    ori.src1 = 1;
    ori.imm = 4;
    append(seg, ori, 0);
    append(seg, addi(5, 3, 4), 1);  // producer is ORI: no fold
    markDependencies(seg);
    EXPECT_EQ(reassociate(seg), 0u);
}

// ---- scaled adds ---------------------------------------------------------

TEST(Scaled, CollapsesShiftAddPair)
{
    TraceSegment seg;
    append(seg, slli(3, 1, 2));
    append(seg, add(5, 3, 2));
    markDependencies(seg);
    EXPECT_EQ(createScaledAdds(seg), 1u);
    const TraceInst &c = seg.insts[1];
    EXPECT_TRUE(c.hasScale());
    EXPECT_EQ(c.scaledSrcIdx, 0);
    EXPECT_EQ(c.scaleAmt, 2);
    EXPECT_EQ(c.inst.src1, 1);      // shift's source
    EXPECT_EQ(c.srcDep[0], kDepLiveIn);
    EXPECT_TRUE(depsConsistent(seg));
    // The shift itself remains in the segment (paper §4.4).
    EXPECT_EQ(seg.insts[0].inst.op, Op::SLLI);
}

TEST(Scaled, ShiftLimitIsThreeBits)
{
    for (unsigned sh : {1u, 2u, 3u}) {
        TraceSegment seg;
        append(seg, slli(3, 1, sh));
        append(seg, add(5, 3, 2));
        markDependencies(seg);
        EXPECT_EQ(createScaledAdds(seg), 1u) << sh;
    }
    for (unsigned sh : {4u, 8u, 31u}) {
        TraceSegment seg;
        append(seg, slli(3, 1, sh));
        append(seg, add(5, 3, 2));
        markDependencies(seg);
        EXPECT_EQ(createScaledAdds(seg), 0u) << sh;
    }
}

TEST(Scaled, IndexedLoadIndexOperand)
{
    TraceSegment seg;
    append(seg, slli(3, 1, 2));
    Instruction lwx;
    lwx.op = Op::LWX;
    lwx.dest = 5;
    lwx.src1 = 16;
    lwx.src2 = 3;
    append(seg, lwx);
    markDependencies(seg);
    EXPECT_EQ(createScaledAdds(seg), 1u);
    EXPECT_EQ(seg.insts[1].scaledSrcIdx, 1);    // the index operand
    EXPECT_EQ(seg.insts[1].inst.src2, 1);
}

TEST(Scaled, DisplacedLoadBaseOperand)
{
    TraceSegment seg;
    append(seg, slli(3, 1, 3));
    append(seg, lw(5, 3, 64));
    markDependencies(seg);
    EXPECT_EQ(createScaledAdds(seg), 1u);
    EXPECT_EQ(seg.insts[1].scaledSrcIdx, 0);
    EXPECT_EQ(seg.insts[1].scaleAmt, 3);
}

TEST(Scaled, StoreDataNeverScaled)
{
    TraceSegment seg;
    append(seg, slli(3, 1, 2));
    Instruction swx;
    swx.op = Op::SWX;
    swx.src1 = 16;
    swx.src2 = 9;       // index not dependent
    swx.src3 = 3;       // data IS dependent: must not scale
    append(seg, swx);
    markDependencies(seg);
    EXPECT_EQ(createScaledAdds(seg), 0u);
}

TEST(Scaled, OnlyOneOperandScaled)
{
    TraceSegment seg;
    append(seg, slli(3, 1, 2));
    append(seg, slli(4, 2, 3));
    append(seg, add(5, 3, 4));      // both operands are shifts
    markDependencies(seg);
    EXPECT_EQ(createScaledAdds(seg), 1u);
    const TraceInst &c = seg.insts[2];
    EXPECT_EQ(c.scaledSrcIdx, 0);   // first candidate slot wins
    EXPECT_EQ(c.inst.src2, 4);      // second operand untouched
}

// ---- placement ---------------------------------------------------------

TEST(Placement, SlotsAreAPermutation)
{
    TraceSegment seg;
    for (int i = 0; i < 12; ++i)
        append(seg, addi(static_cast<RegIndex>(3 + i), 1, i));
    markDependencies(seg);
    placeInstructions(seg);
    std::array<bool, 16> used{};
    for (const auto &ti : seg.insts) {
        EXPECT_LT(ti.slot, 16);
        EXPECT_FALSE(used[ti.slot]);
        used[ti.slot] = true;
    }
}

TEST(Placement, DependentsShareCluster)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 1));
    append(seg, addi(4, 3, 1));
    append(seg, addi(5, 4, 1));
    append(seg, addi(6, 5, 1));
    markDependencies(seg);
    placeInstructions(seg, 16, 4);
    unsigned cl = seg.insts[0].slot / 4;
    for (const auto &ti : seg.insts)
        EXPECT_EQ(ti.slot / 4u, cl);
}

TEST(Placement, HintsSteerLiveIns)
{
    PlacementHints hints;
    hints.cluster[7] = 2;
    TraceSegment seg;
    append(seg, addi(3, 7, 1));     // live-in r7 hinted to cluster 2
    markDependencies(seg);
    placeInstructions(seg, 16, 4, &hints);
    EXPECT_EQ(seg.insts[0].slot / 4u, 2u);
    // The hint table now records r3's new home.
    EXPECT_EQ(hints.cluster[3], 2);
}

TEST(Placement, MovesDoNotOccupySlots)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 5));
    append(seg, addi(4, 3, 0));     // move
    append(seg, addi(5, 3, 7));
    markDependencies(seg);
    markMoves(seg);
    placeInstructions(seg);
    // Non-move instructions get distinct low slots.
    EXPECT_NE(seg.insts[0].slot, seg.insts[2].slot);
}

TEST(Placement, IdentityBaseline)
{
    TraceSegment seg;
    for (int i = 0; i < 5; ++i)
        append(seg, addi(static_cast<RegIndex>(3 + i), 1, i));
    placeIdentity(seg);
    for (std::size_t i = 0; i < seg.size(); ++i)
        EXPECT_EQ(seg.insts[i].slot, i);
}

// ---- dead-write elision (extension) -----------------------------------

TEST(DeadCode, ElidesOverwrittenSameRegionWrite)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 1), 0);  // dead: overwritten, unread
    append(seg, addi(3, 2, 2), 0);
    append(seg, addi(4, 3, 1), 0);
    markDependencies(seg);
    EXPECT_EQ(eliminateDeadWrites(seg), 1u);
    EXPECT_TRUE(seg.insts[0].deadElided);
    EXPECT_FALSE(seg.insts[1].deadElided);
}

TEST(DeadCode, ReaderBlocksElision)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 1), 0);
    append(seg, addi(4, 3, 1), 0);  // reads r3 first
    append(seg, addi(3, 2, 2), 0);
    markDependencies(seg);
    EXPECT_EQ(eliminateDeadWrites(seg), 0u);
}

TEST(DeadCode, CrossRegionOverwriteIsUnsafe)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 1), 0);  // overwriter is behind a branch:
    append(seg, addi(3, 2, 2), 1);  // partial execution may need r3
    markDependencies(seg);
    EXPECT_EQ(eliminateDeadWrites(seg), 0u);
}

TEST(DeadCode, MemoryControlAndMovesExempt)
{
    TraceSegment seg;
    append(seg, lw(3, 1, 0), 0);    // load: side effects, keep
    append(seg, addi(3, 2, 2), 0);
    markDependencies(seg);
    EXPECT_EQ(eliminateDeadWrites(seg), 0u);

    TraceSegment seg2;
    append(seg2, addi(3, 1, 0), 0);     // move idiom
    append(seg2, addi(3, 2, 2), 0);
    markDependencies(seg2);
    markMoves(seg2);
    // The move is already free; elision must not double-claim it.
    EXPECT_EQ(eliminateDeadWrites(seg2), 0u);
}

TEST(DeadCode, MoveAliasCountsAsReader)
{
    TraceSegment seg;
    append(seg, addi(3, 1, 1), 0);      // producer
    append(seg, addi(4, 3, 0), 0);      // move aliasing r3
    append(seg, addi(3, 2, 2), 0);      // overwrite r3
    append(seg, addi(5, 4, 1), 0);      // r4 (aliased r3 value) read
    markDependencies(seg);
    markMoves(seg);
    EXPECT_EQ(eliminateDeadWrites(seg), 0u);
}

TEST(DeadCode, ScaledAddFreesShiftForElision)
{
    // The paper's motivating synergy: once the scaled add absorbs the
    // shift, the leftover shift becomes dead if it is overwritten.
    TraceSegment seg;
    append(seg, slli(3, 1, 2), 0);
    append(seg, add(5, 3, 2), 0);   // consumer of the shift
    append(seg, addi(3, 2, 1), 0);  // overwrites the shift result
    markDependencies(seg);
    EXPECT_EQ(eliminateDeadWrites(seg), 0u);    // still read
    EXPECT_EQ(createScaledAdds(seg), 1u);       // frees the reader
    EXPECT_EQ(eliminateDeadWrites(seg), 1u);
    EXPECT_TRUE(seg.insts[0].deadElided);
}

// ---- value-equivalence property test ---------------------------------
//
// Generate random segments, run the full optimization pipeline, and
// check every observable outcome (results, addresses, store data,
// branch conditions) is identical to the unoptimized segment for
// random live-in values. This is the correctness contract of the
// whole fill unit.

Instruction
randomInst(Random &rng)
{
    Instruction in;
    auto reg = [&rng]() {
        return static_cast<RegIndex>(rng.below(12) + 1);
    };
    switch (rng.below(10)) {
      case 0: case 1: case 2:
        in.op = Op::ADDI;
        in.dest = reg();
        in.src1 = rng.percent(20) ? kRegZero : reg();
        in.imm = static_cast<std::int32_t>(rng.range(-64, 64)) *
                 (rng.percent(10) ? 0 : 1);
        break;
      case 3:
        in.op = Op::SLLI;
        in.dest = reg();
        in.src1 = reg();
        in.shamt = static_cast<std::uint8_t>(rng.below(5));
        break;
      case 4:
        in.op = Op::ADD;
        in.dest = reg();
        in.src1 = reg();
        in.src2 = rng.percent(25) ? kRegZero : reg();
        break;
      case 5:
        in.op = Op::LW;
        in.dest = reg();
        in.src1 = reg();
        in.imm = static_cast<std::int32_t>(rng.range(-32, 32)) * 4;
        break;
      case 6:
        in.op = Op::LWX;
        in.dest = reg();
        in.src1 = reg();
        in.src2 = reg();
        break;
      case 7:
        in.op = Op::SW;
        in.src1 = reg();
        in.src3 = reg();
        in.imm = static_cast<std::int32_t>(rng.range(-32, 32)) * 4;
        break;
      case 8:
        in.op = rng.percent(50) ? Op::BEQ : Op::BNE;
        in.src1 = reg();
        in.src2 = reg();
        in.imm = 4;
        break;
      default:
        in.op = rng.percent(50) ? Op::XOR : Op::SUB;
        in.dest = reg();
        in.src1 = reg();
        in.src2 = reg();
        break;
    }
    return in;
}

class PassEquivalence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PassEquivalence, OptimizedSegmentComputesSameValues)
{
    Random rng(GetParam() * 2654435761u + 17);
    TraceSegment seg;
    unsigned region = 0;
    const unsigned n = 4 + static_cast<unsigned>(rng.below(13));
    for (unsigned i = 0; i < n; ++i) {
        Instruction in = randomInst(rng);
        append(seg, in, region);
        if (in.isControl() || rng.percent(20))
            ++region;
    }

    TraceSegment original = seg;
    markDependencies(original);

    markDependencies(seg);
    markMoves(seg);
    ReassocOptions opts;
    opts.crossBlockOnly = rng.percent(50);
    reassociate(seg, opts);
    createScaledAdds(seg);
    eliminateDeadWrites(seg);
    PlacementHints hints;
    placeInstructions(seg, 16, 4, &hints);

    ASSERT_TRUE(depsConsistent(seg));

    for (int trial = 0; trial < 4; ++trial) {
        std::array<std::uint32_t, kNumArchRegs> livein{};
        for (auto &v : livein)
            v = static_cast<std::uint32_t>(rng.next());
        livein[0] = 0;

        auto ref = test::evaluateSegment(original, livein);
        auto opt = test::evaluateSegment(seg, livein);
        ASSERT_EQ(ref.size(), opt.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(ref[i], opt[i])
                << "inst " << i << " ("
                << disassemble(original.insts[i].inst) << " -> "
                << disassemble(seg.insts[i].inst) << ") seed "
                << GetParam();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassEquivalence,
                         ::testing::Range(0u, 60u));

} // namespace
} // namespace tcfill
