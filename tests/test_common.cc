/** @file Unit tests for logging, stats, tables and the PRNG. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace tcfill
{
namespace
{

// ---- logging ---------------------------------------------------------

TEST(Logging, VformatBasics)
{
    EXPECT_EQ(detail::vformat("plain"), "plain");
    EXPECT_EQ(detail::vformat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(detail::vformat("%05u", 7u), "00007");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 3), "panic: boom 3");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(LoggingDeath, PanicIfOnlyFiresWhenTrue)
{
    panic_if(false, "must not fire");
    EXPECT_DEATH(panic_if(true, "fires"), "fires");
}

// ---- stats ------------------------------------------------------------

TEST(Stats, CounterBasics)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramBucketsAndMean)
{
    stats::Histogram h(4);
    h.sample(0);
    h.sample(1, 2);
    h.sample(9);    // overflow -> last bucket
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (0.0 + 1 + 1 + 9) / 4.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Stats, GroupValuesAndFormulas)
{
    stats::Counter hits, misses;
    hits += 3;
    misses += 1;
    stats::Group g("test");
    g.addCounter("hits", hits, "hits");
    g.addCounter("misses", misses, "misses");
    g.addFormula("rate",
        [&]() {
            return static_cast<double>(hits.value()) /
                   static_cast<double>(hits.value() + misses.value());
        },
        "hit rate");
    EXPECT_TRUE(g.has("hits"));
    EXPECT_FALSE(g.has("nope"));
    EXPECT_DOUBLE_EQ(g.value("hits"), 3.0);
    EXPECT_DOUBLE_EQ(g.value("rate"), 0.75);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("test.hits"), std::string::npos);
    EXPECT_NE(os.str().find("# hit rate"), std::string::npos);
}

TEST(StatsDeath, MissingStatIsFatal)
{
    stats::Group g("g");
    EXPECT_EXIT(g.value("absent"), ::testing::ExitedWithCode(1),
                "not registered");
}

// ---- tables -----------------------------------------------------------

TEST(Table, AlignsColumns)
{
    TextTable t({"name", "v"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header, separator and two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(-2.5, 1), "-2.5");
    EXPECT_EQ(TextTable::pct(0.1734, 1), "17.3%");
}

TEST(TableDeath, RowArityMismatchIsFatal)
{
    TextTable t({"a", "b"});
    EXPECT_EXIT(t.addRow({"only-one"}), ::testing::ExitedWithCode(1),
                "row has");
}

// ---- random -----------------------------------------------------------

TEST(Random, Deterministic)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, SeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Random, BelowInBounds)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Random, RangeInclusive)
{
    Random r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, PercentExtremes)
{
    Random r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.percent(0));
        EXPECT_TRUE(r.percent(100));
    }
}

} // namespace
} // namespace tcfill
