/** @file Unit tests for the trace cache (storage, LRU, paths). */

#include <gtest/gtest.h>

#include "trace/tcache.hh"

namespace tcfill
{
namespace
{

TraceSegment
makeSeg(Addr start, unsigned n, bool taken = false)
{
    TraceSegment seg;
    seg.startPc = start;
    for (unsigned i = 0; i < n; ++i) {
        TraceInst ti;
        ti.inst.op = Op::ADDI;
        ti.inst.dest = 3;
        ti.inst.src1 = 3;
        ti.inst.imm = 1;
        ti.pc = start + i * 4;
        ti.taken = taken;
        ti.origIdx = static_cast<std::uint8_t>(i);
        seg.insts.push_back(ti);
    }
    seg.nextPc = start + n * 4;
    return seg;
}

TEST(TraceCache, MissThenHit)
{
    TraceCache tc;
    EXPECT_EQ(tc.lookup(0x400000), nullptr);
    tc.install(makeSeg(0x400000, 8));
    const TraceSegment *seg = tc.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 8u);
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(tc.misses(), 1u);
}

TEST(TraceCache, SamePathRefreshesInPlace)
{
    TraceCache tc;
    tc.install(makeSeg(0x400000, 8));
    tc.install(makeSeg(0x400000, 8));
    EXPECT_EQ(tc.installs(), 2u);
    // Still a single copy: a different start misses.
    EXPECT_EQ(tc.lookup(0x400004), nullptr);
}

TEST(TraceCache, PathAssociativityKeepsBothPaths)
{
    TraceCache::Params p;
    p.entries = 8;
    p.ways = 4;
    TraceCache tc(p);
    tc.install(makeSeg(0x400000, 8, false));
    tc.install(makeSeg(0x400000, 8, true));     // different path
    // MRU selection returns the most recently installed path.
    const TraceSegment *seg = tc.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    EXPECT_TRUE(seg->insts[0].taken);
    // A selector can pick the other way.
    const TraceSegment *nt = tc.lookup(0x400000,
        [](const TraceSegment &s) {
            return s.insts[0].taken ? std::size_t(0) : std::size_t(10);
        });
    ASSERT_NE(nt, nullptr);
    EXPECT_FALSE(nt->insts[0].taken);
}

TEST(TraceCache, LruEvictionWithinSet)
{
    TraceCache::Params p;
    p.entries = 2;      // 1 set x 2 ways
    p.ways = 2;
    TraceCache tc(p);
    tc.install(makeSeg(0x400000, 4));
    tc.install(makeSeg(0x400004, 4));
    tc.lookup(0x400000);                    // refresh LRU
    tc.install(makeSeg(0x400008, 4));       // evicts 0x400004
    EXPECT_TRUE(tc.probe(0x400000));
    EXPECT_FALSE(tc.probe(0x400004));
    EXPECT_TRUE(tc.probe(0x400008));
}

TEST(TraceCache, FlushDropsEverything)
{
    TraceCache tc;
    tc.install(makeSeg(0x400000, 4));
    tc.flush();
    EXPECT_FALSE(tc.probe(0x400000));
}

TEST(TraceCache, PaperStorageBudget)
{
    // Baseline: 2K entries x 16 insts x (32 inst bits + 7 pre-decode)
    // = 128KB of instructions + 28KB of pre-decode (paper §3: ~156KB).
    TraceCache tc;
    std::size_t bits = tc.storageBits();
    EXPECT_EQ(bits, 2048u * 16 * 39);
    EXPECT_EQ(bits / 8, 128u * 1024 + 28 * 1024);
}

TEST(TraceCache, OptimizationBitBudget)
{
    // +1 move bit, +2 scaled bits, +4 placement bits = 7 extra bits
    // per instruction (paper §4.6).
    TraceCache::Params p;
    p.moveBits = true;
    p.scaledBits = true;
    p.placementBits = true;
    TraceCache tc(p);
    TraceCache base;
    EXPECT_EQ(tc.storageBits() - base.storageBits(), 2048u * 16 * 7);
}

TEST(TraceCacheDeath, EmptySegmentPanics)
{
    TraceCache tc;
    TraceSegment empty;
    empty.startPc = 0x400000;
    EXPECT_DEATH(tc.install(std::move(empty)), "empty trace segment");
}

TEST(SegmentMeta, CondTargetArithmetic)
{
    TraceInst ti;
    ti.pc = 0x400100;
    ti.inst.op = Op::BEQ;
    ti.inst.imm = -4;
    EXPECT_EQ(ti.condTarget(), 0x400100 + 4 - 16);
    ti.inst.imm = 3;
    EXPECT_EQ(ti.condTarget(), 0x400100 + 4 + 12);
}

TEST(SegmentMeta, BitsPerInst)
{
    EXPECT_EQ(TraceSegment::bitsPerInst(false, false, false), 39u);
    EXPECT_EQ(TraceSegment::bitsPerInst(true, false, false), 40u);
    EXPECT_EQ(TraceSegment::bitsPerInst(false, true, false), 41u);
    EXPECT_EQ(TraceSegment::bitsPerInst(false, false, true), 43u);
    EXPECT_EQ(TraceSegment::bitsPerInst(true, true, true), 46u);
}

} // namespace
} // namespace tcfill
