/** @file Unit tests for the fill unit's segment construction rules. */

#include <gtest/gtest.h>

#include "fill/fill_unit.hh"

namespace tcfill
{
namespace
{

/** Harness: a fill unit wired to a private trace cache/bias table. */
struct FillHarness
{
    explicit FillHarness(FillUnitConfig cfg = {})
        : tcache(), bias(), fill(cfg, tcache, bias)
    {
    }

    /** Retire one synthetic instruction. */
    void
    retire(Instruction in, Addr pc, bool taken = false,
           Addr next = kNoAddr, bool miss_target = false)
    {
        ExecRecord rec;
        rec.seq = seq++;
        rec.pc = pc;
        rec.inst = in;
        rec.taken = taken;
        rec.nextPc = next != kNoAddr ? next : pc + 4;
        fill.retire(rec, cycle, miss_target);
        ++cycle;
    }

    void
    retireAlu(Addr pc)
    {
        Instruction in;
        in.op = Op::ADDI;
        in.dest = 3;
        in.src1 = 3;
        in.imm = 1;
        retire(in, pc);
    }

    void
    retireBranch(Addr pc, bool taken, Addr target)
    {
        Instruction in;
        in.op = Op::BNE;
        in.src1 = 3;
        in.src2 = 0;
        in.imm = static_cast<std::int32_t>(
            (static_cast<std::int64_t>(target) -
             static_cast<std::int64_t>(pc) - 4) / 4);
        retire(in, pc, taken, taken ? target : pc + 4);
    }

    /** Finish the pending segment and install everything. */
    void
    drain()
    {
        fill.flushPending(cycle);
        fill.tick(cycle + 1000);
    }

    TraceCache tcache;
    BiasTable bias;
    FillUnit fill;
    InstSeqNum seq = 0;
    Cycle cycle = 0;
};

TEST(FillUnit, SixteenInstructionLimit)
{
    FillHarness h;
    for (unsigned i = 0; i < 20; ++i)
        h.retireAlu(0x400000 + i * 4);
    h.drain();
    const TraceSegment *seg = h.tcache.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 16u);
    // The remainder went into a second segment.
    EXPECT_TRUE(h.tcache.probe(0x400000 + 16 * 4));
}

TEST(FillUnit, ThreeConditionalBranchLimit)
{
    FillHarness h;
    // Alternate ALU and not-taken branches; the 4th branch must open
    // a new segment.
    Addr pc = 0x400000;
    for (unsigned b = 0; b < 4; ++b) {
        h.retireAlu(pc);
        pc += 4;
        h.retireBranch(pc, false, pc + 64);
        pc += 4;
    }
    h.drain();
    const TraceSegment *seg = h.tcache.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 7u);     // up to and incl. the 3rd branch
    EXPECT_EQ(seg->predSlots.size(), 3u);
    EXPECT_EQ(seg->numBlocks, 4u);  // 2-bit block number bound holds
}

TEST(FillUnit, ReturnsTerminateSegments)
{
    FillHarness h;
    h.retireAlu(0x400000);
    Instruction jr;
    jr.op = Op::JR;
    jr.src1 = kRegRA;
    h.retire(jr, 0x400004, true, 0x400100);
    h.retireAlu(0x400100);
    h.drain();
    const TraceSegment *seg = h.tcache.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 2u);     // ends *after* the return
    EXPECT_TRUE(h.tcache.probe(0x400100));
}

TEST(FillUnit, CallsDoNotTerminate)
{
    FillHarness h;
    h.retireAlu(0x400000);
    Instruction jal;
    jal.op = Op::JAL;
    jal.dest = kRegRA;
    jal.imm = static_cast<std::int32_t>(0x400100 / 4);
    h.retire(jal, 0x400004, true, 0x400100);
    h.retireAlu(0x400100);      // packs across the call boundary
    h.drain();
    const TraceSegment *seg = h.tcache.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 3u);
}

TEST(FillUnit, SerializingInstructionsTerminate)
{
    FillHarness h;
    h.retireAlu(0x400000);
    Instruction sys;
    sys.op = Op::SYSCALL;
    h.retire(sys, 0x400004);
    h.retireAlu(0x400008);
    h.drain();
    const TraceSegment *seg = h.tcache.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 2u);
}

TEST(FillUnit, MissTargetRestartsSegment)
{
    FillHarness h;
    h.retireAlu(0x400000);
    h.retireAlu(0x400004);
    // The next instruction was fetched from the I-cache after a trace
    // cache miss: the fill unit re-aligns to it.
    Instruction in;
    in.op = Op::ADDI;
    in.dest = 3;
    in.src1 = 3;
    in.imm = 1;
    h.retire(in, 0x400008, false, kNoAddr, /*miss_target=*/true);
    h.drain();
    const TraceSegment *first = h.tcache.lookup(0x400000);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->size(), 2u);
    EXPECT_TRUE(h.tcache.probe(0x400008));
}

TEST(FillUnit, PromotedBranchesDoNotConsumeSlots)
{
    FillUnitConfig cfg;
    BiasTable::Params bias_params;
    FillHarness h(cfg);
    // Pre-bias a branch to promotion threshold.
    Addr bpc = 0x400004;
    for (int i = 0; i < 64; ++i)
        h.bias.observe(bpc, true);
    ASSERT_TRUE(h.bias.isPromoted(bpc));

    h.retireAlu(0x400000);
    h.retireBranch(bpc, true, 0x400100);        // promoted
    h.retireAlu(0x400100);
    for (unsigned b = 0; b < 3; ++b) {
        h.retireBranch(0x400104 + b * 8, false, 0x400200);
        h.retireAlu(0x400108 + b * 8);
    }
    h.drain();
    const TraceSegment *seg = h.tcache.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    // Promoted branch embedded; three predicted slots still free.
    EXPECT_TRUE(seg->insts[1].promoted);
    EXPECT_TRUE(seg->insts[1].promotedDir);
    EXPECT_EQ(seg->predSlots.size(), 3u);
    EXPECT_EQ(seg->size(), 9u);     // 4 branches total fit
}

TEST(FillUnit, PackingOffEndsAtThirdBranch)
{
    FillUnitConfig cfg;
    cfg.packTraces = false;
    FillHarness h(cfg);
    Addr pc = 0x400000;
    for (unsigned b = 0; b < 3; ++b) {
        h.retireAlu(pc);
        pc += 4;
        h.retireBranch(pc, false, pc + 64);
        pc += 4;
    }
    h.retireAlu(pc);    // after the 3rd branch: new segment
    h.drain();
    const TraceSegment *seg = h.tcache.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 6u);
    EXPECT_TRUE(h.tcache.probe(pc));
}

TEST(FillUnit, AlignLoopHeadsTerminatesAtBackwardBranch)
{
    FillUnitConfig cfg;
    cfg.alignLoopHeads = true;
    FillHarness h(cfg);
    h.retireAlu(0x400100);
    h.retireBranch(0x400104, true, 0x400100);   // taken backward
    h.retireAlu(0x400100);
    h.retireAlu(0x400104);                      // keeps the follow-on
    h.drain();                                  // segment distinct
    const TraceSegment *seg = h.tcache.lookup(0x400100);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 2u);                 // ends at the branch
}

TEST(FillUnit, FillLatencyDelaysInstall)
{
    FillUnitConfig cfg;
    cfg.latency = 10;
    FillHarness h(cfg);
    for (unsigned i = 0; i < 16; ++i)
        h.retireAlu(0x400000 + i * 4);
    // Finalized at retire cycle ~15; not yet visible at cycle 20.
    h.fill.tick(16);
    EXPECT_FALSE(h.tcache.probe(0x400000));
    h.fill.tick(15 + 10);
    EXPECT_TRUE(h.tcache.probe(0x400000));
}

TEST(FillUnit, OptimizationCountersAccumulate)
{
    FillUnitConfig cfg;
    cfg.opts = FillOptimizations::all();
    FillHarness h(cfg);
    Instruction mv;
    mv.op = Op::ADDI;
    mv.dest = 4;
    mv.src1 = 7;
    mv.imm = 0;
    h.retire(mv, 0x400000);
    h.retireAlu(0x400004);
    h.drain();
    EXPECT_EQ(h.fill.movesMarked(), 1u);
    EXPECT_EQ(h.fill.segmentsBuilt(), 1u);
    EXPECT_EQ(h.fill.instsCollected(), 2u);
    EXPECT_DOUBLE_EQ(h.fill.avgSegmentLength(), 2.0);
}

TEST(FillUnit, NextPcRecordsPathContinuation)
{
    FillHarness h;
    h.retireAlu(0x400000);
    h.retireBranch(0x400004, true, 0x400080);
    h.retireAlu(0x400080);
    h.drain();
    const TraceSegment *seg = h.tcache.lookup(0x400000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 3u);
    EXPECT_EQ(seg->nextPc, 0x400084u);
    EXPECT_TRUE(seg->insts[1].taken);
    EXPECT_EQ(seg->insts[1].condTarget(), 0x400080u);
}

} // namespace
} // namespace tcfill
