/**
 * @file
 * Quickstart: build one benchmark program, run it on the baseline
 * trace-cache processor and on the fully optimized fill unit, and
 * print the comparison — the 60-second tour of the library.
 *
 * Usage: quickstart [workload] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "sim/processor.hh"
#include "workloads/suite.hh"

using namespace tcfill;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "compress";
    unsigned scale = argc > 2
        ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
        : 1;

    Program prog = workloads::build(name, scale);
    std::cout << "workload: " << prog.name << " ("
              << prog.text.size() << " static instructions)\n";

    // Baseline: trace cache + fill unit, no dynamic optimizations.
    SimConfig base = SimConfig::withOpts(FillOptimizations::none());
    base.name = "baseline";
    SimResult rb = simulate(prog, base);
    rb.dump(std::cout);

    // All four optimizations, 5-cycle fill latency (paper default).
    SimConfig opt = SimConfig::withOpts(FillOptimizations::all());
    opt.name = "fill-optimized";
    SimResult ro = simulate(prog, opt);
    ro.dump(std::cout);

    double speedup = rb.ipc() > 0 ? ro.ipc() / rb.ipc() : 0.0;
    std::cout << "\nIPC " << rb.ipc() << " -> " << ro.ipc() << "  ("
              << (speedup - 1.0) * 100.0 << "% improvement)\n";
    return 0;
}
