/**
 * @file
 * Design-space exploration: how the value of the fill-unit
 * optimizations shifts as the machine changes — cross-cluster bypass
 * latency (placement's lever) and trace-cache capacity. The kind of
 * what-if study the simulator exists for.
 *
 * All simulation points are enqueued on a SimRunner pool up front and
 * execute concurrently; the print loops then collect the futures in
 * sweep order, so the output is identical to the old serial version.
 *
 * Usage: design_space [workload]
 */

#include <cstdio>
#include <future>
#include <iostream>
#include <vector>

#include "sim/runner.hh"
#include "trace/tcache.hh"
#include "workloads/suite.hh"

using namespace tcfill;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "perl";
    SimRunner &pool = SimRunner::shared();

    std::cout << "design space study on '" << name << "' ("
              << pool.threads() << " worker threads)\n\n";

    // ---- enqueue both sweeps --------------------------------------
    const Cycle delays[] = {0, 1, 2, 4};
    std::vector<std::shared_future<SimResult>> delay_base;
    std::vector<std::shared_future<SimResult>> delay_opt;
    for (Cycle delay : delays) {
        SimConfig base = SimConfig::withOpts(FillOptimizations::none());
        base.core.crossClusterDelay = delay;
        base.maxInsts = 150'000;
        SimConfig opt = SimConfig::withOpts(FillOptimizations::all());
        opt.core.crossClusterDelay = delay;
        opt.maxInsts = 150'000;
        delay_base.push_back(pool.submit(name, base));
        delay_opt.push_back(pool.submit(name, opt));
    }

    const std::size_t capacities[] = {128, 512, 2048, 8192};
    std::vector<SimConfig> cap_cfgs;
    std::vector<std::shared_future<SimResult>> cap_runs;
    for (std::size_t entries : capacities) {
        SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
        cfg.tcache.entries = entries;
        cfg.maxInsts = 150'000;
        cap_cfgs.push_back(cfg);
        cap_runs.push_back(pool.submit(name, cfg));
    }

    // ---- sweep 1: cross-cluster bypass latency --------------------
    std::cout << "bypass latency sweep (placement's payoff grows "
                 "with the penalty):\n";
    std::printf("  %-8s %-10s %-10s %s\n", "delay", "base IPC",
                "all-opt", "gain");
    for (std::size_t i = 0; i < std::size(delays); ++i) {
        double b = delay_base[i].get().ipc();
        double o = delay_opt[i].get().ipc();
        std::printf("  %-8llu %-10.3f %-10.3f %+5.1f%%\n",
                    static_cast<unsigned long long>(delays[i]), b, o,
                    (o / b - 1.0) * 100.0);
    }

    // ---- sweep 2: trace cache capacity ------------------------------
    std::cout << "\ntrace cache capacity sweep (all opts on):\n";
    std::printf("  %-10s %-10s %-10s %s\n", "entries", "IPC",
                "hit rate", "storage");
    for (std::size_t i = 0; i < std::size(capacities); ++i) {
        SimResult r = cap_runs[i].get();
        // Storage is a pure function of the geometry; no need to keep
        // the simulated Processor alive for it.
        TraceCache geometry(cap_cfgs[i].tcache);
        std::printf("  %-10zu %-10.3f %-10.3f %zu KB\n",
                    capacities[i], r.ipc(), r.tcHitRate(),
                    geometry.storageBits() / 8 / 1024);
    }
    return 0;
}
