/**
 * @file
 * Design-space exploration: how the value of the fill-unit
 * optimizations shifts as the machine changes — cross-cluster bypass
 * latency (placement's lever) and trace-cache capacity. The kind of
 * what-if study the simulator exists for.
 *
 * Usage: design_space [workload]
 */

#include <cstdio>
#include <iostream>

#include "sim/processor.hh"
#include "workloads/suite.hh"

using namespace tcfill;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "perl";
    Program prog = workloads::build(name, 1);

    std::cout << "design space study on '" << name << "'\n\n";

    // ---- sweep 1: cross-cluster bypass latency --------------------
    std::cout << "bypass latency sweep (placement's payoff grows "
                 "with the penalty):\n";
    std::printf("  %-8s %-10s %-10s %s\n", "delay", "base IPC",
                "all-opt", "gain");
    for (Cycle delay : {0u, 1u, 2u, 4u}) {
        SimConfig base = SimConfig::withOpts(FillOptimizations::none());
        base.core.crossClusterDelay = delay;
        base.maxInsts = 150'000;
        SimConfig opt = SimConfig::withOpts(FillOptimizations::all());
        opt.core.crossClusterDelay = delay;
        opt.maxInsts = 150'000;
        double b = simulate(prog, base).ipc();
        double o = simulate(prog, opt).ipc();
        std::printf("  %-8llu %-10.3f %-10.3f %+5.1f%%\n",
                    static_cast<unsigned long long>(delay), b, o,
                    (o / b - 1.0) * 100.0);
    }

    // ---- sweep 2: trace cache capacity ------------------------------
    std::cout << "\ntrace cache capacity sweep (all opts on):\n";
    std::printf("  %-10s %-10s %-10s %s\n", "entries", "IPC",
                "hit rate", "storage");
    for (std::size_t entries : {128u, 512u, 2048u, 8192u}) {
        SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
        cfg.tcache.entries = entries;
        cfg.maxInsts = 150'000;
        Processor proc(prog, cfg);
        SimResult r = proc.run();
        std::printf("  %-10zu %-10.3f %-10.3f %zu KB\n", entries,
                    r.ipc(), r.tcHitRate(),
                    proc.traceCache().storageBits() / 8 / 1024);
    }
    return 0;
}
