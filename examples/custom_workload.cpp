/**
 * @file
 * Custom-workload walkthrough: build a program against the public
 * ProgramBuilder API (a string-table checksum kernel), verify it
 * functionally, then measure how each fill-unit optimization moves
 * its IPC. The template for bringing your own kernel to the
 * simulator.
 */

#include <iostream>

#include "arch/executor.hh"
#include "asm/builder.hh"
#include "common/random.hh"
#include "sim/processor.hh"

using namespace tcfill;

namespace
{

/** A small hash-and-accumulate kernel over a word table. */
Program
buildChecksum()
{
    ProgramBuilder pb("checksum");

    Random rng(1234);
    std::vector<std::int32_t> table(512);
    for (auto &v : table)
        v = static_cast<std::int32_t>(rng.below(100000));
    Addr tab = pb.dataWords(table);
    Addr out = pb.allocData(8, 8);

    const RegIndex base = 4, i = 5, acc = 6, t0 = 8, t1 = 9;
    const RegIndex passes = 20;

    pb.la(base, tab);
    pb.li(passes, 60);
    Label pass_loop = pb.newLabel();
    Label loop = pb.newLabel();
    Label skip = pb.newLabel();

    pb.bind(pass_loop);
    pb.li(i, 512);
    pb.li(acc, 0);
    pb.bind(loop);
    pb.addi(i, i, -1);
    pb.slli(t0, i, 2);          // scaled-add fodder
    pb.lwx(t1, base, t0);
    pb.andi(t0, t1, 1);
    pb.beq(t0, 0, skip);        // data-dependent branch
    pb.add(acc, acc, t1);
    pb.bind(skip);
    pb.move(t0, acc);           // compiler-style move idiom
    pb.srli(t0, t0, 1);
    pb.xor_(acc, acc, t0);
    pb.bgtz(i, loop);
    pb.la(t0, out);
    pb.sw(acc, t0, 0);
    pb.addi(passes, passes, -1);
    pb.bgtz(passes, pass_loop);
    pb.halt();
    return pb.finish();
}

} // namespace

int
main()
{
    Program prog = buildChecksum();

    // 1. Verify it runs functionally and terminates.
    InstSeqNum dynamic = runFunctional(prog);
    std::cout << "checksum kernel: " << prog.text.size()
              << " static / " << dynamic << " dynamic instructions\n";

    // 2. Sweep the optimizations one at a time.
    struct Variant
    {
        const char *name;
        FillOptimizations opts;
    };
    FillOptimizations mv, re, sc, pl;
    mv.markMoves = true;
    re.reassociate = true;
    sc.scaledAdds = true;
    pl.placement = true;
    const Variant variants[] = {
        {"baseline", FillOptimizations::none()},
        {"+moves", mv},
        {"+reassociation", re},
        {"+scaled adds", sc},
        {"+placement", pl},
        {"all", FillOptimizations::all()},
    };

    double base_ipc = 0.0;
    for (const auto &v : variants) {
        SimConfig cfg = SimConfig::withOpts(v.opts);
        SimResult r = simulate(prog, cfg);
        if (base_ipc == 0.0)
            base_ipc = r.ipc();
        std::printf("%-16s IPC %6.3f  (%+5.1f%%)  transformed %4.1f%%\n",
                    v.name, r.ipc(),
                    (r.ipc() / base_ipc - 1.0) * 100.0,
                    r.fracTransformed() * 100.0);
    }
    return 0;
}
