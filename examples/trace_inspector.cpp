/**
 * @file
 * Trace inspector: runs a workload with all fill-unit optimizations
 * enabled, then dumps the hottest resident trace segments with their
 * optimization metadata — marked moves, rewritten (reassociated)
 * immediates, scaled operands and cluster placement. A window into
 * what the fill unit actually did to the code.
 *
 * Usage: trace_inspector [workload] [max_segments]
 */

#include <cstdlib>
#include <iostream>

#include "sim/processor.hh"
#include "workloads/suite.hh"

using namespace tcfill;

namespace
{

void
dumpSegment(const TraceSegment &seg)
{
    std::cout << "segment @0x" << std::hex << seg.startPc << std::dec
              << "  (" << seg.size() << " insts, " << seg.numBlocks
              << " blocks, next=0x" << std::hex << seg.nextPc
              << std::dec << ")\n";
    for (const auto &ti : seg.insts) {
        std::cout << "  [" << unsigned(ti.origIdx) << "->slot "
                  << unsigned(ti.slot) << " c"
                  << unsigned(ti.slot) / 4 << "] "
                  << disassemble(ti.inst, ti.pc);
        if (ti.isMove)
            std::cout << "   ; MOVE (renames to " << regName(ti.moveSrc)
                      << ")";
        if (ti.reassociated)
            std::cout << "   ; REASSOCIATED";
        if (ti.hasScale())
            std::cout << "   ; SCALED src" << unsigned(ti.scaledSrcIdx)
                      << " <<" << unsigned(ti.scaleAmt);
        if (ti.promoted)
            std::cout << "   ; PROMOTED("
                      << (ti.promotedDir ? "T" : "NT") << ")";
        std::cout << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "m88ksim";
    unsigned max_segs = argc > 2
        ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
        : 6;

    Program prog = workloads::build(name, 1);
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.maxInsts = 60'000;

    Processor proc(prog, cfg);
    SimResult res = proc.run();

    std::cout << "ran " << res.retired << " instructions of "
              << prog.name << " (IPC " << res.ipc() << ", "
              << res.segmentsBuilt << " segments built, hit rate "
              << res.tcHitRate() << ")\n\n";

    // Show segments containing at least one transformation first.
    unsigned shown = 0;
    proc.traceCache().forEach([&](const TraceSegment &seg) {
        if (shown >= max_segs)
            return;
        bool interesting = false;
        for (const auto &ti : seg.insts) {
            if (ti.isMove || ti.reassociated || ti.hasScale()) {
                interesting = true;
                break;
            }
        }
        if (interesting) {
            dumpSegment(seg);
            std::cout << "\n";
            ++shown;
        }
    });
    if (shown == 0)
        std::cout << "(no transformed segments resident)\n";
    return 0;
}
